"""Serving-layer hardening regressions: strict (RFC 8259) JSON responses
and row masks derived from the handler's own drop decision."""

import copy
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core import DecisionTree, Experiment, MissingValueHandler, ModeImputer
from repro.datasets import load_dataset
from repro.serve import (
    FairnessMonitor,
    ModelRegistry,
    ScoringEngine,
    ScoringService,
    dumps_strict,
    json_safe,
    make_server,
)


def _strict_loads(data):
    """A decoder that rejects the bare NaN/Infinity tokens JSON forbids."""

    def refuse(token):
        raise ValueError(f"non-JSON constant {token!r} in response")

    return json.loads(data, parse_constant=refuse)


class _NaNEngine:
    """Stub engine whose scores are non-finite (an overflowed margin)."""

    monitor = None

    def score_record(self, record):
        return {
            "label": float("nan"),
            "score": float("inf"),
            "favorable": False,
            "decision": "not granted",
        }


class TestStrictJson:
    def test_json_safe_replaces_non_finite_recursively(self):
        payload = {
            "a": float("nan"),
            "b": [1.0, float("inf"), {"c": float("-inf")}],
            "d": np.float64("nan"),
            "e": "NaN",  # strings pass through untouched
            "f": 3,
        }
        assert json_safe(payload) == {
            "a": None,
            "b": [1.0, None, {"c": None}],
            "d": None,
            "e": "NaN",
            "f": 3,
        }

    def test_dumps_strict_roundtrips_through_strict_decoder(self):
        body = dumps_strict({"score": float("nan")})
        assert _strict_loads(body) == {"score": None}

    def test_nan_score_roundtrips_through_http_strictly(self):
        """Regression: allow_nan=True emitted bare NaN, invalid to strict
        parsers (JSON.parse and json.loads with parse_constant raising)."""
        service = ScoringService(_NaNEngine(), model_id="nan-model")
        server = make_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/score",
                data=json.dumps({"x": 1}).encode(),
                headers={"Content-Type": "application/json"},
            )
            body = urllib.request.urlopen(request).read()
            out = _strict_loads(body)  # raises on bare NaN/Infinity
            assert out["records_scored"] == 1
            assert out["label"] is None
            assert out["score"] is None
            assert out["favorable"] is False
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_metrics_with_non_finite_monitor_values_stay_strict(self):
        """An undefined disparate impact (privileged group never selected)
        must not make /metrics unparseable."""
        engine = _NaNEngine()
        monitor = FairnessMonitor("sex", window_size=100, min_observations=1)
        engine.monitor = monitor
        # privileged never favorable, unprivileged always: DI = rate/0 = NaN
        groups = np.asarray([1.0, 0.0] * 10)
        monitor.observe_batch(groups, 1.0 - groups)
        assert np.isnan(monitor.snapshot()["disparate_impact"])
        service = ScoringService(engine)
        server = make_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics"
            ).read()
            out = _strict_loads(body)
            assert out["monitor"]["disparate_impact"] is None
            assert any("statistical_parity_difference" in a for a in out["alerts"])
        finally:
            server.shutdown()
            server.server_close()
            service.close()


# ----------------------------------------------------------------------
# row_mask from the handler's own decision
# ----------------------------------------------------------------------
class DropOnMissingProtected(MissingValueHandler):
    """Drops rows whose *protected* value is missing; imputes the rest.

    Its drop criterion deliberately differs from "any feature missing",
    which is what the scoring engine used to assume for every row-dropping
    handler when deriving row_mask.
    """

    def __init__(self, protected_column):
        self.protected_column = protected_column
        self._imputer = ModeImputer()

    def fit(self, train_frame, feature_columns, seed):
        self._imputer.fit(train_frame, feature_columns, seed)
        return self

    def handle_missing(self, frame):
        kept = frame.mask(self.kept_mask(frame))
        return self._imputer.handle_missing(kept)

    def kept_mask(self, frame):
        return ~frame.col(self.protected_column).missing_mask()

    @property
    def drops_rows(self):
        return True


class MisreportingHandler(MissingValueHandler):
    """Drops one extra row beyond what its (inherited) kept_mask claims."""

    def fit(self, train_frame, feature_columns, seed):
        return self

    def handle_missing(self, frame):
        mask = np.ones(frame.num_rows, dtype=bool)
        if frame.num_rows:
            mask[0] = False
        return frame.mask(mask)

    @property
    def drops_rows(self):
        return True


@pytest.fixture(scope="module")
def adult_pipeline(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("registry-mask"))
    frame, spec = load_dataset("adult", n=1500)
    experiment = Experiment(
        frame=frame,
        spec=spec,
        random_seed=5,
        learner=DecisionTree(tuned=False),
        missing_value_handler=ModeImputer(),
    )
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    registry = ModelRegistry(root)
    experiment.export_pipeline(prepared, trained, result, registry=registry)
    model_id = registry.list_models()[0]["model_id"]
    return registry.load_pipeline(model_id), frame, spec


def _row_dicts(frame, count):
    decoded = {c: frame.col(c).values for c in frame.columns}
    out = []
    for i in range(count):
        row = {}
        for name in frame.columns:
            value = decoded[name][i]
            row[name] = value.item() if hasattr(value, "item") else value
        out.append(row)
    return out


class TestRowMaskFromHandler:
    def test_protected_dropping_handler_mask_matches_scored_rows(
        self, adult_pipeline
    ):
        """Regression: a handler whose drop criterion is the protected
        column used to yield a mask whose popcount disagreed with the
        number of scored rows."""
        pipeline, frame, spec = adult_pipeline
        protected_column = spec.protected(pipeline.protected_attribute).column
        handler = DropOnMissingProtected(protected_column).fit(
            frame, spec.feature_columns, seed=5
        )
        pipeline = copy.copy(pipeline)
        pipeline.handler = handler
        engine = ScoringEngine(pipeline)

        from repro.serve import records_to_frame

        records = _row_dicts(frame, 6)
        records[1][protected_column] = None  # dropped by this handler
        records[3][spec.feature_columns[0]] = None  # imputed, NOT dropped
        scoring_frame = records_to_frame(spec, records)
        batch = engine.score_frame(scoring_frame)
        assert batch.row_mask.tolist() == [True, False, True, True, True, True]
        assert int(batch.row_mask.sum()) == len(batch.labels) == 5

    def test_misreporting_handler_fails_loudly(self, adult_pipeline):
        pipeline, frame, spec = adult_pipeline
        handler = MisreportingHandler().fit(frame, spec.feature_columns, seed=5)
        pipeline = copy.copy(pipeline)
        pipeline.handler = handler
        engine = ScoringEngine(pipeline)
        from repro.serve import records_to_frame

        scoring_frame = records_to_frame(spec, _row_dicts(frame, 4))
        with pytest.raises(RuntimeError, match="kept_mask"):
            engine.score_frame(scoring_frame)

    def test_complete_case_mask_still_matches(self, adult_pipeline):
        """The default complete-case handler keeps mask and drop in sync."""
        from repro.core import CompleteCaseAnalysis
        from repro.serve import records_to_frame

        pipeline, frame, spec = adult_pipeline
        handler = CompleteCaseAnalysis().fit(frame, spec.feature_columns, seed=5)
        pipeline = copy.copy(pipeline)
        pipeline.handler = handler
        engine = ScoringEngine(pipeline)
        records = _row_dicts(frame, 5)
        records[2][spec.feature_columns[0]] = None
        batch = engine.score_frame(records_to_frame(spec, records))
        assert batch.row_mask.tolist() == [True, True, False, True, True]
        assert int(batch.row_mask.sum()) == len(batch.labels)

"""Telemetry runtime: span lifecycle, no-op fast path, trace files,
fork behaviour, environment bootstrap, and rate-limited logging."""

import json
import os

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    telemetry.reset_for_tests()
    yield
    telemetry.reset_for_tests()


def _read_trace(directory):
    records = []
    for name in sorted(os.listdir(directory)):
        if name.startswith("trace-") and name.endswith(".jsonl"):
            with open(os.path.join(directory, name)) as handle:
                records.extend(json.loads(line) for line in handle if line.strip())
    return records


class TestDefaults:
    def test_spans_off_metrics_on_by_default(self):
        assert not telemetry.tracing_enabled()
        assert telemetry.metrics_enabled()

    def test_span_returns_shared_noop_when_disabled(self):
        a = telemetry.span("x")
        b = telemetry.span("y", key=1)
        assert a is b is telemetry.NOOP_SPAN
        with a as opened:
            opened.set(extra=True)  # must be a harmless no-op

    def test_master_switch_disables_metrics_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        telemetry.reset_for_tests()
        telemetry.counter("c").inc()
        assert telemetry.counter("c").value == 0
        assert not telemetry.metrics_enabled()
        assert telemetry.span("s") is telemetry.NOOP_SPAN

    def test_trace_dir_env_enables_tracing(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        telemetry.reset_for_tests()
        assert telemetry.tracing_enabled()
        assert telemetry.trace_dir() == str(tmp_path)


class TestSpans:
    def test_nesting_records_parent_ids(self, tmp_path):
        telemetry.configure(trace_dir=str(tmp_path))
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        records = {r["name"]: r for r in _read_trace(tmp_path)}
        assert "parent" not in records["outer"]
        assert records["inner"]["parent"] == records["outer"]["span"]
        assert records["inner"]["dur_s"] >= 0.0
        assert records["inner"]["trace"] == records["outer"]["trace"]

    def test_detached_span_does_not_scope_siblings(self, tmp_path):
        telemetry.configure(trace_dir=str(tmp_path))
        with telemetry.span("root") as root:
            detached = telemetry.span("gen", detached=True)
            detached.__enter__()
            # a span opened while the detached one is live must parent
            # under root, not under the generator's span
            with telemetry.span("sibling") as sibling:
                assert sibling.parent_id == root.span_id
            detached.__exit__(None, None, None)
            assert detached.parent_id == root.span_id

    def test_error_exit_is_recorded_and_not_swallowed(self, tmp_path):
        telemetry.configure(trace_dir=str(tmp_path))
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("x")
        (record,) = _read_trace(tmp_path)
        assert record["error"] == "RuntimeError"

    def test_attrs_via_kwargs_and_set(self, tmp_path):
        telemetry.configure(trace_dir=str(tmp_path))
        with telemetry.span("s", a=1) as s:
            s.set(b=2)
        (record,) = _read_trace(tmp_path)
        assert record["attrs"] == {"a": 1, "b": 2}

    def test_aggregate_only_mode_keeps_disk_untouched(self, tmp_path):
        telemetry.configure(aggregate=True)
        with telemetry.span("stage.x"):
            pass
        state = telemetry.aggregate_state()
        assert state["stage.x"]["count"] == 1
        assert telemetry.trace_dir() is None

    def test_aggregate_delta(self):
        telemetry.configure(aggregate=True)
        with telemetry.span("a"):
            pass
        before = telemetry.aggregate_state()
        with telemetry.span("a"):
            pass
        with telemetry.span("b"):
            pass
        delta = telemetry.aggregate_delta(before)
        assert delta["a"]["count"] == 1
        assert delta["b"]["count"] == 1


class TestTraceContext:
    def test_context_none_when_tracing_off(self):
        assert telemetry.trace_context() is None

    def test_adopted_context_parents_new_spans(self, tmp_path):
        telemetry.configure(trace_dir=str(tmp_path))
        telemetry.adopt_context({"trace_id": "cafe", "parent": "host:1-1"})
        with telemetry.span("child") as child:
            assert child.parent_id == "host:1-1"
        (record,) = _read_trace(tmp_path)
        assert record["trace"] == "cafe"
        assert record["parent"] == "host:1-1"

    def test_context_carries_open_span_as_parent(self, tmp_path):
        telemetry.configure(trace_dir=str(tmp_path))
        with telemetry.span("root") as root:
            context = telemetry.trace_context()
            assert context["parent"] == root.span_id
            assert context["trace_id"]


class TestForkSafety:
    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="requires os.fork"
    )
    def test_forked_child_writes_its_own_file(self, tmp_path):
        telemetry.configure(trace_dir=str(tmp_path))
        with telemetry.span("parent.work"):
            pid = os.fork()
            if pid == 0:  # child
                try:
                    with telemetry.span("child.work"):
                        pass
                finally:
                    os._exit(0)
            os.waitpid(pid, 0)
        records = _read_trace(tmp_path)
        by_name = {r["name"]: r for r in records}
        # two files: one per pid
        pids = {r["pid"] for r in records}
        assert len(pids) == 2
        # the child's span parents under the span open at fork time
        assert by_name["child.work"]["parent"] == by_name["parent.work"]["span"]


class TestEvents:
    def test_event_counts_and_traces(self, tmp_path):
        telemetry.configure(trace_dir=str(tmp_path))
        telemetry.record_event("distributed.lease", {"worker": "w0"})
        assert telemetry.counter("distributed.lease").value == 1
        (record,) = [r for r in _read_trace(tmp_path) if r["kind"] == "event"]
        assert record["name"] == "distributed.lease"
        assert record["fields"] == {"worker": "w0"}

    def test_event_without_tracing_still_counts(self):
        telemetry.record_event("x")
        assert telemetry.counter("x").value == 1


class TestRateLimitedLog:
    def test_burst_then_suppression(self):
        clock = [0.0]
        limiter = telemetry.RateLimitedLog(
            rate=1.0, burst=3, clock=lambda: clock[0]
        )
        assert [limiter.allow() for _ in range(5)] == [
            True, True, True, False, False,
        ]
        assert limiter.suppressed == 2

    def test_tokens_refill_over_time(self):
        clock = [0.0]
        limiter = telemetry.RateLimitedLog(
            rate=2.0, burst=1, clock=lambda: clock[0]
        )
        assert limiter.allow()
        assert not limiter.allow()
        clock[0] = 1.0  # 2 tokens accrued, capped at burst=1
        assert limiter.allow()
        assert not limiter.allow()

    def test_suppressed_counter_feeds_telemetry(self):
        clock = [0.0]
        limiter = telemetry.RateLimitedLog(
            rate=1.0, burst=1, suppressed_counter="t.suppressed",
            clock=lambda: clock[0],
        )
        limiter.allow()
        limiter.allow()
        assert telemetry.counter("t.suppressed").value == 1

    def test_log_emits_json_line(self, capfd):
        limiter = telemetry.RateLimitedLog(rate=5.0, burst=10)
        assert limiter.log({"event": "x", "detail": 1})
        err = capfd.readouterr().err
        parsed = json.loads(err.strip())
        assert parsed["event"] == "x"
        assert "ts" in parsed


class TestLogLine:
    def test_quiet_suppresses_unforced(self, capfd):
        telemetry.set_quiet(True)
        telemetry.log_line("hidden")
        telemetry.log_line("shown", force=True)
        err = capfd.readouterr().err
        assert "hidden" not in err
        assert "shown" in err

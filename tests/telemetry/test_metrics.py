"""Metric primitives: counters, gauges, histograms, registry state,
cross-process merging, and Prometheus text exposition."""

import math

import pytest

from repro.telemetry import metrics as m


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = m.Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_noop_counter_stays_zero(self):
        m.NOOP_COUNTER.inc()
        m.NOOP_COUNTER.inc(100)
        assert m.NOOP_COUNTER.value == 0


class TestGauge:
    def test_set_and_read(self):
        g = m.Gauge()
        g.set(3.5)
        assert g.value() == 3.5

    def test_set_fn_is_sampled_lazily(self):
        g = m.Gauge()
        box = [1.0]
        g.set_fn(lambda: box[0])
        assert g.value() == 1.0
        box[0] = 7.0
        assert g.value() == 7.0

    def test_failing_set_fn_reads_as_nan(self):
        g = m.Gauge()
        g.set_fn(lambda: 1 / 0)
        assert math.isnan(g.value())

    def test_noop_gauge(self):
        m.NOOP_GAUGE.set(5.0)
        assert m.NOOP_GAUGE.value() == 0.0


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        h = m.Histogram(bounds=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 7.0, 100.0):
            h.observe(v)
        state = h.state()
        # le-style buckets: <=1, <=5, <=10, +Inf overflow
        assert state["counts"] == [2, 1, 1, 1]
        assert state["count"] == 5
        assert state["sum"] == pytest.approx(111.5)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            m.Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            m.Histogram(bounds=())

    def test_noop_histogram(self):
        m.NOOP_HISTOGRAM.observe(3.0)
        assert m.NOOP_HISTOGRAM.state()["count"] == 0


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        reg = m.MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_state_snapshot_is_sorted_and_plain_data(self):
        reg = m.MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        state = reg.state()
        assert list(state["counters"]) == ["a", "b"]
        assert state["counters"]["b"] == 2
        assert state["gauges"]["g"] == 1.5
        assert state["histograms"]["h"]["counts"] == [0, 1, 0]


class TestMergeStates:
    def test_counters_and_gauges_sum(self):
        a = {"counters": {"x": 1}, "gauges": {"g": 2.0}, "histograms": {}}
        b = {"counters": {"x": 3, "y": 1}, "gauges": {"g": 0.5}, "histograms": {}}
        merged = m.merge_states([a, b])
        assert merged["counters"] == {"x": 4, "y": 1}
        assert merged["gauges"]["g"] == 2.5

    def test_histograms_merge_bucketwise(self):
        h1 = {"bounds": [1.0, 2.0], "counts": [1, 0, 2], "sum": 7.0, "count": 3}
        h2 = {"bounds": [1.0, 2.0], "counts": [0, 1, 1], "sum": 5.0, "count": 2}
        merged = m.merge_states(
            [
                {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
                {"counters": {}, "gauges": {}, "histograms": {"h": h2}},
            ]
        )
        out = merged["histograms"]["h"]
        assert out["counts"] == [1, 1, 3]
        assert out["sum"] == 12.0
        assert out["count"] == 5

    def test_mismatched_bounds_are_skipped_not_corrupted(self):
        h1 = {"bounds": [1.0], "counts": [1, 0], "sum": 1.0, "count": 1}
        h2 = {"bounds": [2.0], "counts": [0, 1], "sum": 3.0, "count": 1}
        merged = m.merge_states(
            [
                {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
                {"counters": {}, "gauges": {}, "histograms": {"h": h2}},
            ]
        )
        # first writer wins; the incompatible sample must not blend in
        assert merged["histograms"]["h"]["counts"] == [1, 0]

    def test_empty_input(self):
        merged = m.merge_states([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


class TestPrometheusRendering:
    def _state(self):
        return {
            "counters": {"serve.requests": 7},
            "gauges": {"queue depth": 2.0},
            "histograms": {
                "latency": {
                    "bounds": [1.0, 5.0],
                    "counts": [2, 1, 1],
                    "sum": 9.5,
                    "count": 4,
                }
            },
        }

    def test_counter_rendering(self):
        text = m.render_prometheus(self._state())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 7" in text

    def test_gauge_name_sanitization(self):
        text = m.render_prometheus(self._state())
        assert "repro_queue_depth 2" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = m.render_prometheus(self._state())
        assert 'repro_latency_bucket{le="1"} 2' in text
        assert 'repro_latency_bucket{le="5"} 3' in text
        assert 'repro_latency_bucket{le="+Inf"} 4' in text
        assert "repro_latency_sum 9.5" in text
        assert "repro_latency_count 4" in text

    def test_ends_with_newline(self):
        assert m.render_prometheus(self._state()).endswith("\n")

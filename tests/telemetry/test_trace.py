"""Trace stitching: loading per-process files, building one tree,
stage totals, the critical path, and strict single-tree validation."""

import json
import os

import pytest

from repro.telemetry import trace


def _write(directory, name, records):
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        for record in records:
            if isinstance(record, str):
                handle.write(record + "\n")
            else:
                handle.write(json.dumps(record) + "\n")
    return path


def _span(span_id, name, dur, parent=None, pid=1, ts=0.0, trace_id="t1"):
    record = {
        "kind": "span",
        "name": name,
        "span": span_id,
        "trace": trace_id,
        "ts": ts,
        "dur_s": dur,
        "pid": pid,
    }
    if parent is not None:
        record["parent"] = parent
    return record


@pytest.fixture
def two_process_trace(tmp_path):
    """A coordinator file plus a worker file that stitch into one tree."""
    _write(
        tmp_path,
        "trace-host-100.jsonl",
        [
            _span("h:100-2", "stage.train", 0.4, parent="h:100-1", pid=100, ts=2.0),
            _span("h:100-1", "grid.run", 1.0, pid=100, ts=1.0),
            {"kind": "event", "name": "distributed.lease", "ts": 1.5, "pid": 100},
        ],
    )
    _write(
        tmp_path,
        "trace-host-200.jsonl",
        [
            _span("h:200-1", "distributed.lease", 0.5, parent="h:100-1", pid=200, ts=1.2),
            _span("h:200-2", "stage.train", 0.3, parent="h:200-1", pid=200, ts=1.3),
        ],
    )
    return tmp_path


class TestLoadTraceDir:
    def test_merges_files_sorted_by_timestamp(self, two_process_trace):
        loaded = trace.load_trace_dir(str(two_process_trace))
        assert loaded["files"] == 2
        assert [s["span"] for s in loaded["spans"]] == [
            "h:100-1", "h:200-1", "h:200-2", "h:100-2",
        ]
        assert len(loaded["events"]) == 1

    def test_torn_and_junk_lines_are_counted_not_fatal(self, tmp_path):
        _write(
            tmp_path,
            "trace-host-1.jsonl",
            [
                _span("a", "x", 0.1),
                '{"kind":"span","name":"torn',  # killed mid-write
                "[1,2,3]",  # parseable but not a record
            ],
        )
        loaded = trace.load_trace_dir(str(tmp_path))
        assert len(loaded["spans"]) == 1
        assert loaded["bad_lines"] == 2

    def test_ignores_unrelated_files(self, tmp_path):
        _write(tmp_path, "trace-host-1.jsonl", [_span("a", "x", 0.1)])
        (tmp_path / "results.jsonl").write_text('{"not": "a trace"}\n')
        assert trace.load_trace_dir(str(tmp_path))["files"] == 1


class TestBuildTree:
    def test_single_tree_across_processes(self, two_process_trace):
        loaded = trace.load_trace_dir(str(two_process_trace))
        roots, orphans, children = trace.build_tree(loaded["spans"])
        assert [r["span"] for r in roots] == ["h:100-1"]
        assert orphans == []
        assert {c["span"] for c in children["h:100-1"]} == {"h:100-2", "h:200-1"}

    def test_missing_parent_becomes_orphan(self):
        spans = [_span("b", "child", 0.1, parent="never-written")]
        roots, orphans, _ = trace.build_tree(spans)
        assert roots == []
        assert [o["span"] for o in orphans] == ["b"]


class TestStageTotals:
    def test_totals_aggregate_across_processes(self, two_process_trace):
        loaded = trace.load_trace_dir(str(two_process_trace))
        totals = trace.stage_totals(loaded["spans"])
        assert totals["stage.train"]["count"] == 2
        assert totals["stage.train"]["total_s"] == pytest.approx(0.7)
        assert totals["stage.train"]["max_s"] == pytest.approx(0.4)
        assert totals["stage.train"]["mean_s"] == pytest.approx(0.35)
        # sorted by descending total: the root dominates
        assert next(iter(totals)) == "grid.run"


class TestCriticalPath:
    def test_follows_longest_child_chain(self, two_process_trace):
        loaded = trace.load_trace_dir(str(two_process_trace))
        roots, _, children = trace.build_tree(loaded["spans"])
        path = trace.critical_path(roots, children)
        assert [p["name"] for p in path] == [
            "grid.run", "distributed.lease", "stage.train",
        ]

    def test_empty_forest(self):
        assert trace.critical_path([], {}) == []


class TestSummarizeAndStrict:
    def test_healthy_two_process_trace_passes_strict(self, two_process_trace):
        summary = trace.summarize(str(two_process_trace))
        assert summary["roots"] == 1
        assert summary["orphans"] == 0
        assert summary["processes"] == [100, 200]
        assert summary["trace_ids"] == ["t1"]
        assert summary["event_counts"] == {"distributed.lease": 1}
        assert trace.check_single_tree(summary) is None

    def test_report_renders(self, two_process_trace):
        report = trace.render_report(trace.summarize(str(two_process_trace)))
        assert "grid.run" in report
        assert "critical path" in report
        assert "1 root(s), 0 orphan(s)" in report

    def test_strict_rejects_empty_trace(self, tmp_path):
        _write(tmp_path, "trace-host-1.jsonl", [])
        problem = trace.check_single_tree(trace.summarize(str(tmp_path)))
        assert "no spans" in problem

    def test_strict_rejects_multiple_roots(self, tmp_path):
        _write(
            tmp_path,
            "trace-host-1.jsonl",
            [_span("a", "run1", 0.1), _span("b", "run2", 0.1)],
        )
        problem = trace.check_single_tree(trace.summarize(str(tmp_path)))
        assert "1 root" in problem

    def test_strict_rejects_orphans(self, tmp_path):
        _write(
            tmp_path,
            "trace-host-1.jsonl",
            [_span("a", "run", 0.1), _span("b", "lost", 0.1, parent="gone")],
        )
        problem = trace.check_single_tree(trace.summarize(str(tmp_path)))
        assert "missing parent" in problem

    def test_strict_rejects_mixed_trace_ids(self, tmp_path):
        _write(
            tmp_path,
            "trace-host-1.jsonl",
            [
                _span("a", "run", 0.2, trace_id="t1"),
                _span("b", "other", 0.1, parent="a", trace_id="t2"),
            ],
        )
        problem = trace.check_single_tree(trace.summarize(str(tmp_path)))
        assert "trace ids" in problem

"""Property-based tests for the learn substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.learn import (
    KFold,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    accuracy_score,
    binary_counts,
    roc_auc_score,
)

matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 30), st.integers(1, 5)),
    elements=st.floats(-1e4, 1e4, allow_nan=False),
)


class TestScalerProperties:
    @given(X=matrices)
    def test_standard_scaler_inverse_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)

    @given(X=matrices)
    def test_standard_scaler_output_bounded_moments(self, X):
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.abs(Z.mean(axis=0)) < 1e-6)
        stds = Z.std(axis=0)
        assert np.all((np.abs(stds - 1.0) < 1e-6) | (stds < 1e-6))

    @given(X=matrices)
    def test_minmax_scaler_in_unit_interval_on_train(self, X):
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= -1e-9 and Z.max() <= 1.0 + 1e-9


class TestOneHotProperties:
    @given(
        train=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30),
        test=st.lists(st.sampled_from(["a", "b", "c", "z"]), min_size=1, max_size=30),
    )
    def test_every_row_has_exactly_one_hot(self, train, test):
        encoder = OneHotEncoder().fit(np.asarray(train, dtype=object).reshape(-1, 1))
        out = encoder.transform(np.asarray(test, dtype=object).reshape(-1, 1))
        assert np.allclose(out.sum(axis=1), 1.0)

    @given(train=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
    def test_width_is_categories_plus_one(self, train):
        encoder = OneHotEncoder().fit(np.asarray(train, dtype=object).reshape(-1, 1))
        out = encoder.transform(np.asarray(train, dtype=object).reshape(-1, 1))
        assert out.shape[1] == len(set(train)) + 1


class TestMetricProperties:
    labels = st.lists(st.integers(0, 1), min_size=2, max_size=50)

    @given(y=labels, data=st.data())
    def test_confusion_counts_partition(self, y, data):
        predictions = data.draw(
            st.lists(st.integers(0, 1), min_size=len(y), max_size=len(y))
        )
        c = binary_counts(y, predictions, positive_label=1)
        assert c["TP"] + c["FP"] + c["TN"] + c["FN"] == len(y)

    @given(y=labels, data=st.data())
    def test_accuracy_in_unit_interval(self, y, data):
        predictions = data.draw(
            st.lists(st.integers(0, 1), min_size=len(y), max_size=len(y))
        )
        assert 0.0 <= accuracy_score(y, predictions) <= 1.0

    @given(y=labels, data=st.data())
    def test_auc_complement_symmetry(self, y, data):
        assume(0 < sum(y) < len(y))
        scores = data.draw(
            st.lists(st.floats(0, 1, allow_nan=False), min_size=len(y), max_size=len(y))
        )
        auc = roc_auc_score(y, scores)
        flipped = roc_auc_score([1 - v for v in y], scores)
        assert abs((auc + flipped) - 1.0) < 1e-9


class TestKFoldProperties:
    @given(
        n=st.integers(10, 300),
        k=st.integers(2, 8),
        seed=st.integers(0, 10_000),
    )
    def test_folds_partition_and_are_disjoint(self, n, k, seed):
        assume(n >= k)
        seen = []
        for train_idx, test_idx in KFold(k, random_state=seed).split(n):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            assert len(train_idx) + len(test_idx) == n
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(n))

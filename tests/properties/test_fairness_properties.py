"""Property-based tests for fairness invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fairness import (
    BinaryLabelDataset,
    BinaryLabelDatasetMetric,
    ClassificationMetric,
    DisparateImpactRemover,
    Reweighing,
    generalized_entropy_index_from_benefits,
)

PRIV = [{"sex": 1.0}]
UNPRIV = [{"sex": 0.0}]


@st.composite
def labeled_groups(draw, min_size=8, max_size=60):
    """Random dataset with both groups and both labels present."""
    n = draw(st.integers(min_size, max_size))
    labels = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    sex = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    assume(0 < sum(sex) < n)
    # every (group, label) cell must be populated for ratio metrics
    cells = {(s, l) for s, l in zip(sex, labels)}
    assume(len(cells) == 4)
    rng = np.random.default_rng(draw(st.integers(0, 1000)))
    features = rng.normal(size=(n, 2)) + np.asarray(sex)[:, None]
    return BinaryLabelDataset(
        features=features,
        labels=np.asarray(labels, dtype=np.float64),
        protected_attributes=np.asarray(sex, dtype=np.float64),
        protected_attribute_names=["sex"],
    )


class TestReweighingProperties:
    @given(dataset=labeled_groups())
    @settings(max_examples=40, deadline=None)
    def test_reweighing_always_zeroes_weighted_parity(self, dataset):
        out = Reweighing(UNPRIV, PRIV).fit_transform(dataset)
        metric = BinaryLabelDatasetMetric(out, UNPRIV, PRIV)
        assert abs(metric.statistical_parity_difference()) < 1e-9

    @given(dataset=labeled_groups())
    @settings(max_examples=40, deadline=None)
    def test_reweighing_preserves_total_weight(self, dataset):
        out = Reweighing(UNPRIV, PRIV).fit_transform(dataset)
        assert np.isclose(out.instance_weights.sum(), dataset.instance_weights.sum())

    @given(dataset=labeled_groups())
    @settings(max_examples=40, deadline=None)
    def test_reweighing_weights_positive(self, dataset):
        out = Reweighing(UNPRIV, PRIV).fit_transform(dataset)
        assert (out.instance_weights > 0).all()


class TestDIRemoverProperties:
    @given(dataset=labeled_groups(min_size=12), level=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_rank_preservation_within_groups(self, dataset, level):
        out = DisparateImpactRemover(repair_level=level).fit_transform(dataset)
        sex = dataset.protected_column("sex")
        for value in (0.0, 1.0):
            members = sex == value
            original = dataset.features[members, 0]
            repaired = out.features[members, 0]
            order = np.argsort(original, kind="mergesort")
            assert (np.diff(repaired[order]) >= -1e-9).all()

    @given(dataset=labeled_groups(min_size=12))
    @settings(max_examples=30, deadline=None)
    def test_zero_level_identity(self, dataset):
        out = DisparateImpactRemover(repair_level=0.0).fit_transform(dataset)
        assert np.allclose(out.features, dataset.features)

    @given(dataset=labeled_groups(min_size=12))
    @settings(max_examples=30, deadline=None)
    def test_labels_never_touched(self, dataset):
        out = DisparateImpactRemover(repair_level=1.0).fit_transform(dataset)
        assert np.array_equal(out.labels, dataset.labels)


class TestMetricIdentities:
    @given(dataset=labeled_groups(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_rate_identities_hold(self, dataset, data):
        n = dataset.num_instances
        predictions = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        pred = dataset.with_predictions(labels=np.asarray(predictions, dtype=np.float64))
        metric = ClassificationMetric(dataset, pred, UNPRIV, PRIV)
        measures = metric.performance_measures()
        c = metric.binary_confusion_matrix()
        assert np.isclose(
            measures["num_instances"], c["TP"] + c["FP"] + c["TN"] + c["FN"]
        )
        if not np.isnan(measures["true_positive_rate"]):
            assert np.isclose(
                measures["true_positive_rate"] + measures["false_negative_rate"], 1.0
            )
        if not np.isnan(measures["accuracy"]):
            assert 0.0 <= measures["accuracy"] <= 1.0

    @given(dataset=labeled_groups())
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_zero_entropy(self, dataset):
        pred = dataset.with_predictions(labels=dataset.labels)
        metric = ClassificationMetric(dataset, pred, UNPRIV, PRIV)
        assert abs(metric.theil_index()) < 1e-12
        assert metric.accuracy() == 1.0

    @given(dataset=labeled_groups())
    @settings(max_examples=40, deadline=None)
    def test_dataset_di_equals_base_rate_ratio(self, dataset):
        metric = BinaryLabelDatasetMetric(dataset, UNPRIV, PRIV)
        expected = metric.base_rate(False) / metric.base_rate(True)
        assert np.isclose(metric.disparate_impact(), expected, equal_nan=True)


class TestEntropyProperties:
    benefits = st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=2, max_size=50)

    @given(values=benefits, alpha=st.sampled_from([0.5, 1.0, 2.0]))
    def test_nonnegative(self, values, alpha):
        arr = np.asarray(values)
        assume(arr.sum() > 0)
        index = generalized_entropy_index_from_benefits(arr, alpha=alpha)
        assert np.isnan(index) or index >= -1e-12

    @given(value=st.floats(0.1, 10.0), n=st.integers(2, 30))
    def test_constant_benefits_zero(self, value, n):
        arr = np.full(n, value)
        assert abs(generalized_entropy_index_from_benefits(arr, alpha=2.0)) < 1e-12

"""Property-based tests for the frame substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import (
    Column,
    DataFrame,
    concat_rows,
    train_validation_test_masks,
)

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8
)
numeric_values = st.lists(
    st.one_of(st.floats(-1e6, 1e6), st.none()), min_size=1, max_size=40
)
categorical_values = st.lists(
    st.one_of(st.sampled_from(["a", "b", "c", "d"]), st.none()), min_size=1, max_size=40
)


class TestColumnProperties:
    @given(values=numeric_values)
    def test_numeric_missing_count_matches_none_count(self, values):
        column = Column.numeric("x", values)
        assert column.num_missing() == sum(v is None for v in values)

    @given(values=categorical_values)
    def test_fill_missing_leaves_no_missing(self, values):
        column = Column.categorical("x", values).fill_missing("z")
        assert not column.has_missing()

    @given(values=categorical_values)
    def test_value_counts_total_equals_present(self, values):
        column = Column.categorical("x", values)
        assert sum(column.value_counts().values()) == len(values) - column.num_missing()

    @given(values=numeric_values, data=st.data())
    def test_mask_preserves_selected_values(self, values, data):
        column = Column.numeric("x", values)
        mask = data.draw(
            st.lists(st.booleans(), min_size=len(values), max_size=len(values))
        )
        masked = column.mask(np.asarray(mask))
        assert len(masked) == sum(mask)

    @given(values=numeric_values)
    def test_column_equals_its_copy(self, values):
        column = Column.numeric("x", values)
        assert column.equals(column.copy())


class TestFrameProperties:
    @given(values=numeric_values)
    def test_dropna_then_no_missing(self, values):
        frame = DataFrame.from_dict({"x": values, "y": list(range(len(values)))})
        if frame.dropna().num_rows > 0:
            assert frame.dropna().num_incomplete_rows() == 0

    @given(values=categorical_values)
    def test_concat_with_self_doubles_rows(self, values):
        frame = DataFrame.from_dict({"x": values})
        merged = concat_rows([frame, frame])
        assert merged.num_rows == 2 * frame.num_rows

    @given(
        n=st.integers(10, 500),
        train=st.floats(0.3, 0.8),
        validation=st.floats(0.05, 0.15),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_split_masks_partition(self, n, train, validation, seed):
        masks = train_validation_test_masks(n, train, validation, seed)
        total = sum(m.astype(int) for m in masks)
        assert (total == 1).all()

    @given(n=st.integers(10, 200), seed=st.integers(0, 1000))
    def test_split_masks_deterministic(self, n, seed):
        a = train_validation_test_masks(n, 0.7, 0.1, seed)
        b = train_validation_test_masks(n, 0.7, 0.1, seed)
        for x, y in zip(a, b):
            assert (x == y).all()

"""Property tests for the serialization contract behind the serving layer.

For every learner, encoder, scaler and post-processor:
``from_state(to_state(m))`` must predict/transform **byte-identically** to
the original on arbitrary inputs — and survive the full artifact path
(JSON manifest + npz arrays on disk), not just an in-memory state dict.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fairness import BinaryLabelDataset
from repro.fairness.postprocessing import (
    CalibratedEqOddsPostprocessing,
    EqOddsPostprocessing,
    RejectOptionClassification,
)
from repro.fairness.preprocessing import DisparateImpactRemover, Reweighing
from repro.learn import (
    DecisionTreeClassifier,
    FrequencyEncoder,
    GaussianNB,
    KNeighborsClassifier,
    LabelEncoder,
    LogisticRegressionGD,
    MinMaxScaler,
    NoOpScaler,
    OneHotEncoder,
    SGDClassifier,
    SimpleImputer,
    StandardScaler,
    SVDEmbeddingEncoder,
    TargetEncoder,
)
from repro.serialize import restore, state_of
from repro.serve import load_artifact, save_artifact


def roundtrip(component, tmp_path=None):
    """state → (optionally disk) → component."""
    payload = state_of(component)
    if tmp_path is not None:
        save_artifact(str(tmp_path), {"c": payload})
        payload = load_artifact(str(tmp_path))["c"]
    return restore(payload)


classification_data = st.integers(0, 2**32 - 1).map(
    lambda seed: _make_classification(seed)
)


def _make_classification(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(30, 120))
    d = int(rng.integers(2, 8))
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.5 * rng.normal(size=n) > 0).astype(np.float64)
    if len(np.unique(y)) < 2:
        y[0] = 1.0 - y[0]
    X_test = rng.normal(size=(25, d))
    return X, y, X_test


LEARNER_FACTORIES = [
    lambda: SGDClassifier(loss="log", max_iter=5, random_state=0),
    lambda: SGDClassifier(loss="hinge", penalty="l1", max_iter=4, random_state=1),
    lambda: LogisticRegressionGD(max_iter=30, random_state=0),
    lambda: DecisionTreeClassifier(max_depth=5, random_state=0),
    lambda: DecisionTreeClassifier(criterion="entropy", min_samples_leaf=3),
    lambda: GaussianNB(),
    lambda: KNeighborsClassifier(n_neighbors=3),
]


class TestLearnerRoundtrip:
    @pytest.mark.parametrize("factory", LEARNER_FACTORIES)
    @given(data=classification_data)
    @settings(max_examples=15, deadline=None)
    def test_predictions_byte_identical(self, factory, data):
        X, y, X_test = data
        model = factory().fit(X, y)
        clone = roundtrip(model)
        assert np.array_equal(model.predict(X_test), clone.predict(X_test))
        if hasattr(model, "predict_proba") and model.get_params().get("loss") != "hinge":
            assert np.array_equal(
                model.predict_proba(X_test), clone.predict_proba(X_test)
            )

    @pytest.mark.parametrize("factory", LEARNER_FACTORIES)
    def test_survives_disk(self, factory, tmp_path):
        X, y, X_test = _make_classification(7)
        model = factory().fit(X, y)
        clone = roundtrip(model, tmp_path=tmp_path / "art")
        assert np.array_equal(model.predict(X_test), clone.predict(X_test))

    @given(data=classification_data)
    @settings(max_examples=10, deadline=None)
    def test_string_labels_roundtrip(self, data):
        X, y, X_test = data
        labels = np.where(y == 1.0, "yes", "no").astype(object)
        model = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, labels)
        clone = roundtrip(model)
        assert np.array_equal(model.predict(X_test), clone.predict(X_test))


categorical_frames = st.lists(
    st.lists(
        st.one_of(st.sampled_from(["a", "b", "c", "dd"]), st.none()),
        min_size=8,
        max_size=40,
    ),
    min_size=1,
    max_size=3,
)


def _columns(raw):
    n = min(len(col) for col in raw)
    return [np.asarray(col[:n], dtype=object) for col in raw]


ENCODER_FACTORIES = [
    lambda: OneHotEncoder(),
    lambda: FrequencyEncoder(),
    lambda: TargetEncoder(smoothing=2.0),
    lambda: SVDEmbeddingEncoder(n_components=3),
]


class TestEncoderRoundtrip:
    @pytest.mark.parametrize("factory", ENCODER_FACTORIES)
    @given(raw=categorical_frames, seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_transform_byte_identical(self, factory, raw, seed):
        columns = _columns(raw)
        rng = np.random.default_rng(seed)
        y = (rng.random(len(columns[0])) < 0.5).astype(np.float64)
        encoder = factory().fit(columns, y=y)
        clone = roundtrip(encoder)
        # include unseen values at transform time
        test_columns = [
            np.asarray(list(col[:5]) + ["unseen!"], dtype=object) for col in columns
        ]
        assert np.array_equal(
            encoder.transform(test_columns), clone.transform(test_columns)
        )

    @pytest.mark.parametrize("factory", ENCODER_FACTORIES)
    def test_survives_disk(self, factory, tmp_path):
        columns = [np.asarray(["a", "b", None, "c", "a", "b"] * 3, dtype=object)]
        y = np.asarray([0.0, 1.0] * 9)
        encoder = factory().fit(columns, y=y)
        clone = roundtrip(encoder, tmp_path=tmp_path / "art")
        assert np.array_equal(encoder.transform(columns), clone.transform(columns))

    def test_label_encoder_roundtrip(self):
        encoder = LabelEncoder().fit(np.asarray(["x", "y", "z", "x"], dtype=object))
        clone = roundtrip(encoder)
        values = np.asarray(["z", "x", "y"], dtype=object)
        assert np.array_equal(encoder.transform(values), clone.transform(values))
        assert np.array_equal(
            encoder.inverse_transform([0, 2]), clone.inverse_transform([0, 2])
        )


matrices = arrays(
    np.float64,
    st.tuples(st.integers(3, 25), st.integers(1, 5)),
    elements=st.floats(-1e4, 1e4, allow_nan=False),
)

SCALER_FACTORIES = [
    lambda: StandardScaler(),
    lambda: StandardScaler(with_mean=False),
    lambda: MinMaxScaler(feature_range=(-1.0, 2.0)),
    lambda: NoOpScaler(),
    lambda: SimpleImputer(strategy="median"),
]


class TestScalerRoundtrip:
    @pytest.mark.parametrize("factory", SCALER_FACTORIES)
    @given(X=matrices)
    @settings(max_examples=15, deadline=None)
    def test_transform_byte_identical(self, factory, X):
        transformer = factory().fit(X)
        clone = roundtrip(transformer)
        assert np.array_equal(transformer.transform(X), clone.transform(X))


def _prediction_datasets(seed, n=120):
    rng = np.random.default_rng(seed)
    groups = (rng.random(n) < 0.5).astype(np.float64)
    truth = (rng.random(n) < 0.35 + 0.2 * groups).astype(np.float64)
    scores = np.clip(
        0.5 * truth + 0.3 * rng.random(n) + 0.1 * groups, 0.0, 1.0
    )
    predicted = (scores >= 0.5).astype(np.float64)
    base = BinaryLabelDataset(
        features=rng.normal(size=(n, 3)),
        labels=truth,
        protected_attributes=groups.reshape(-1, 1),
        protected_attribute_names=["g"],
        feature_names=["f0", "f1", "f2"],
    )
    pred = base.with_predictions(labels=predicted, scores=scores)
    return base, pred


UNPRIV = [{"g": 0.0}]
PRIV = [{"g": 1.0}]

POST_FACTORIES = [
    lambda: RejectOptionClassification(
        unprivileged_groups=UNPRIV,
        privileged_groups=PRIV,
        num_class_thresh=8,
        num_ROC_margin=5,
    ),
    lambda: CalibratedEqOddsPostprocessing(
        unprivileged_groups=UNPRIV, privileged_groups=PRIV, seed=13
    ),
    lambda: EqOddsPostprocessing(
        unprivileged_groups=UNPRIV, privileged_groups=PRIV, seed=13
    ),
]


class TestPostProcessorRoundtrip:
    @pytest.mark.parametrize("factory", POST_FACTORIES)
    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_predict_byte_identical(self, factory, seed):
        base, pred = _prediction_datasets(seed)
        post = factory().fit(base, pred)
        clone = roundtrip(post)
        out = post.predict(pred)
        out_clone = clone.predict(pred)
        assert np.array_equal(out.labels, out_clone.labels)
        if out.scores is not None or out_clone.scores is not None:
            assert np.array_equal(out.scores, out_clone.scores)

    @pytest.mark.parametrize("factory", POST_FACTORIES)
    def test_survives_disk(self, factory, tmp_path):
        base, pred = _prediction_datasets(99)
        post = factory().fit(base, pred)
        clone = roundtrip(post, tmp_path=tmp_path / "art")
        assert np.array_equal(post.predict(pred).labels, clone.predict(pred).labels)


class TestPreProcessorRoundtrip:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_reweighing_weights_byte_identical(self, seed):
        base, _ = _prediction_datasets(seed)
        reweighing = Reweighing(
            unprivileged_groups=UNPRIV, privileged_groups=PRIV
        ).fit(base)
        clone = roundtrip(reweighing)
        assert np.array_equal(
            reweighing.transform(base).instance_weights,
            clone.transform(base).instance_weights,
        )

    @given(seed=st.integers(0, 500), level=st.sampled_from([0.0, 0.5, 1.0]))
    @settings(max_examples=10, deadline=None)
    def test_di_remover_features_byte_identical(self, seed, level):
        base, _ = _prediction_datasets(seed)
        remover = DisparateImpactRemover(
            repair_level=level, sensitive_attribute="g"
        ).fit(base)
        clone = roundtrip(remover)
        assert np.array_equal(
            remover.transform(base).features, clone.transform(base).features
        )

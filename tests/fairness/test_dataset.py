"""Unit tests for BinaryLabelDataset."""

import numpy as np
import pytest

from repro.fairness import BinaryLabelDataset

from .conftest import PRIV, UNPRIV, make_biased_dataset


def _tiny(**overrides):
    defaults = dict(
        features=np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
        labels=np.array([1.0, 0.0, 1.0]),
        protected_attributes=np.array([1.0, 0.0, 1.0]),
        protected_attribute_names=["sex"],
    )
    defaults.update(overrides)
    return BinaryLabelDataset(**defaults)


class TestConstruction:
    def test_defaults(self):
        ds = _tiny()
        assert ds.num_instances == 3
        assert (ds.instance_weights == 1.0).all()
        assert ds.scores is None
        assert ds.feature_names == ["f0", "f1"]

    def test_protected_reshaped_to_2d(self):
        ds = _tiny()
        assert ds.protected_attributes.shape == (3, 1)

    def test_label_outside_convention_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            _tiny(labels=np.array([1.0, 2.0, 0.0]))

    def test_same_favorable_unfavorable_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            _tiny(favorable_label=1.0, unfavorable_label=1.0)

    def test_length_mismatches_rejected(self):
        with pytest.raises(ValueError):
            _tiny(labels=np.array([1.0]))
        with pytest.raises(ValueError):
            _tiny(protected_attributes=np.array([1.0]))
        with pytest.raises(ValueError):
            _tiny(instance_weights=np.array([1.0]))
        with pytest.raises(ValueError):
            _tiny(scores=np.array([0.5]))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            _tiny(instance_weights=np.array([1.0, -1.0, 1.0]))

    def test_custom_label_convention(self):
        ds = _tiny(
            labels=np.array([2.0, 5.0, 2.0]),
            favorable_label=2.0,
            unfavorable_label=5.0,
        )
        assert list(ds.favorable_mask()) == [True, False, True]

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError, match="names"):
            _tiny(protected_attribute_names=["sex", "race"])


class TestCopySubset:
    def test_copy_is_independent(self):
        ds = _tiny()
        copy = ds.copy()
        copy.features[0, 0] = 99.0
        copy.instance_weights[0] = 7.0
        assert ds.features[0, 0] == 1.0
        assert ds.instance_weights[0] == 1.0

    def test_subset_by_mask(self):
        ds = _tiny()
        sub = ds.subset(np.array([True, False, True]))
        assert sub.num_instances == 2
        assert list(sub.labels) == [1.0, 1.0]

    def test_subset_by_indices(self):
        ds = _tiny()
        sub = ds.subset(np.array([2, 0]))
        assert list(sub.features[:, 0]) == [5.0, 1.0]

    def test_subset_carries_scores(self):
        ds = _tiny(scores=np.array([0.9, 0.1, 0.8]))
        sub = ds.subset(np.array([0, 2]))
        assert list(sub.scores) == [0.9, 0.8]


class TestPredictions:
    def test_with_predictions_replaces_labels(self):
        ds = _tiny()
        pred = ds.with_predictions(labels=np.array([0.0, 0.0, 0.0]))
        assert (pred.labels == 0.0).all()
        assert (ds.labels == np.array([1.0, 0.0, 1.0])).all()

    def test_with_predictions_sets_scores(self):
        ds = _tiny()
        pred = ds.with_predictions(scores=np.array([0.1, 0.2, 0.3]))
        assert pred.scores[2] == 0.3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            _tiny().with_predictions(labels=np.array([1.0]))


class TestGroups:
    def test_group_mask_simple(self):
        ds = _tiny()
        assert list(ds.group_mask(PRIV)) == [True, False, True]
        assert list(ds.group_mask(UNPRIV)) == [False, True, False]

    def test_group_mask_none_is_all(self):
        assert _tiny().group_mask(None).all()

    def test_group_mask_or_of_ands(self):
        ds = BinaryLabelDataset(
            features=np.zeros((4, 1)),
            labels=np.array([1.0, 0.0, 1.0, 0.0]),
            protected_attributes=np.array(
                [[1.0, 1.0], [1.0, 0.0], [0.0, 1.0], [0.0, 0.0]]
            ),
            protected_attribute_names=["sex", "race"],
        )
        groups = [{"sex": 1.0, "race": 1.0}, {"sex": 0.0, "race": 0.0}]
        assert list(ds.group_mask(groups)) == [True, False, False, True]

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError, match="available"):
            _tiny().group_mask([{"age": 1.0}])

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            _tiny().group_mask([])
        with pytest.raises(ValueError):
            _tiny().group_mask([{}])


class TestCompatibility:
    def test_compatible_roundtrip(self):
        ds = make_biased_dataset()
        pred = ds.with_predictions(labels=ds.labels)
        ds.validate_compatible(pred)  # should not raise

    def test_row_count_mismatch(self):
        a = make_biased_dataset(n=100)
        b = make_biased_dataset(n=101)
        with pytest.raises(ValueError, match="instances"):
            a.validate_compatible(b)

    def test_protected_value_mismatch(self):
        a = make_biased_dataset(seed=1)
        b = make_biased_dataset(seed=2)
        with pytest.raises(ValueError, match="differ"):
            a.validate_compatible(b)

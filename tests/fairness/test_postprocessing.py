"""Unit tests for post-processing interventions."""

import numpy as np
import pytest

from repro.fairness import (
    CalibratedEqOddsPostprocessing,
    ClassificationMetric,
    EqOddsPostprocessing,
    RejectOptionClassification,
)

from .conftest import PRIV, UNPRIV, make_biased_dataset


def _scored_predictions(seed=0, n=1500, noise=0.8):
    """Dataset + biased scores correlated with label and group."""
    ds = make_biased_dataset(seed=seed, n=n)
    rng = np.random.default_rng(seed + 100)
    sex = ds.protected_column("sex")
    raw = 0.6 * ds.labels + 0.25 * sex + rng.normal(0.0, noise / 4.0, n)
    scores = np.clip(raw, 0.01, 0.99)
    labels = np.where(scores >= 0.5, 1.0, 0.0)
    return ds, ds.with_predictions(labels=labels, scores=scores)


class TestRejectOption:
    def test_reduces_statistical_parity_gap(self):
        ds_true, ds_pred = _scored_predictions()
        before = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        roc = RejectOptionClassification(
            UNPRIV, PRIV, num_class_thresh=25, num_ROC_margin=25
        )
        adjusted = roc.fit_predict(ds_true, ds_pred)
        after = ClassificationMetric(ds_true, adjusted, UNPRIV, PRIV)
        assert abs(after.statistical_parity_difference()) < abs(
            before.statistical_parity_difference()
        )

    def test_constraint_satisfied_when_feasible(self):
        ds_true, ds_pred = _scored_predictions()
        roc = RejectOptionClassification(
            UNPRIV, PRIV, num_class_thresh=25, num_ROC_margin=25,
            metric_ub=0.1, metric_lb=-0.1,
        )
        adjusted = roc.fit_predict(ds_true, ds_pred)
        after = ClassificationMetric(ds_true, adjusted, UNPRIV, PRIV)
        assert -0.1 <= after.statistical_parity_difference() <= 0.1

    def test_predictions_outside_critical_region_follow_threshold(self):
        ds_true, ds_pred = _scored_predictions(n=400)
        roc = RejectOptionClassification(
            UNPRIV, PRIV, num_class_thresh=10, num_ROC_margin=10
        ).fit(ds_true, ds_pred)
        adjusted = roc.predict(ds_pred)
        outside = (
            np.abs(ds_pred.scores - roc.classification_threshold_) > roc.ROC_margin_
        )
        expected = np.where(
            ds_pred.scores[outside] > roc.classification_threshold_, 1.0, 0.0
        )
        assert np.array_equal(adjusted.labels[outside], expected)

    def test_other_metric_names(self):
        ds_true, ds_pred = _scored_predictions(n=500)
        for name in ("Average odds difference", "Equal opportunity difference"):
            roc = RejectOptionClassification(
                UNPRIV, PRIV, num_class_thresh=8, num_ROC_margin=8, metric_name=name
            )
            assert roc.fit_predict(ds_true, ds_pred).num_instances == 500

    def test_requires_scores(self):
        ds_true, _ = _scored_predictions(n=100)
        pred_without_scores = ds_true.with_predictions(labels=ds_true.labels)
        roc = RejectOptionClassification(UNPRIV, PRIV)
        with pytest.raises(ValueError, match="scores"):
            roc.fit(ds_true, pred_without_scores)

    def test_invalid_metric_name(self):
        with pytest.raises(ValueError, match="metric_name"):
            RejectOptionClassification(UNPRIV, PRIV, metric_name="nope")

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            RejectOptionClassification(UNPRIV, PRIV, low_class_thresh=0.9, high_class_thresh=0.2)

    def test_predict_before_fit_raises(self):
        _, ds_pred = _scored_predictions(n=100)
        with pytest.raises(RuntimeError):
            RejectOptionClassification(UNPRIV, PRIV).predict(ds_pred)


class TestCalibratedEqOdds:
    def test_mix_rates_in_unit_interval(self):
        ds_true, ds_pred = _scored_predictions()
        ceo = CalibratedEqOddsPostprocessing(UNPRIV, PRIV, seed=1).fit(ds_true, ds_pred)
        assert 0.0 <= ceo.priv_mix_rate_ <= 1.0
        assert 0.0 <= ceo.unpriv_mix_rate_ <= 1.0

    def test_only_one_group_mixed(self):
        ds_true, ds_pred = _scored_predictions()
        ceo = CalibratedEqOddsPostprocessing(UNPRIV, PRIV, seed=1).fit(ds_true, ds_pred)
        assert ceo.priv_mix_rate_ == 0.0 or ceo.unpriv_mix_rate_ == 0.0

    def test_narrows_generalized_cost_gap(self):
        ds_true, ds_pred = _scored_predictions(seed=3)
        constraint = "fnr"
        ceo = CalibratedEqOddsPostprocessing(
            UNPRIV, PRIV, cost_constraint=constraint, seed=7
        )
        adjusted = ceo.fit_predict(ds_true, ds_pred)
        y = ds_true.favorable_mask().astype(float)
        priv = ds_true.group_mask(PRIV)

        def gfnr(scores, mask):
            pos = (y == 1.0) & mask
            return float((1.0 - scores[pos]).mean())

        before_gap = abs(gfnr(ds_pred.scores, priv) - gfnr(ds_pred.scores, ~priv))
        after_gap = abs(gfnr(adjusted.scores, priv) - gfnr(adjusted.scores, ~priv))
        assert after_gap < before_gap

    def test_seed_reproducibility(self):
        ds_true, ds_pred = _scored_predictions(n=600)
        a = CalibratedEqOddsPostprocessing(UNPRIV, PRIV, seed=5).fit_predict(
            ds_true, ds_pred
        )
        b = CalibratedEqOddsPostprocessing(UNPRIV, PRIV, seed=5).fit_predict(
            ds_true, ds_pred
        )
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_constraint(self):
        with pytest.raises(ValueError, match="cost_constraint"):
            CalibratedEqOddsPostprocessing(UNPRIV, PRIV, cost_constraint="tpr")

    def test_requires_scores(self):
        ds_true, _ = _scored_predictions(n=100)
        bare = ds_true.with_predictions(labels=ds_true.labels)
        with pytest.raises(ValueError, match="scores"):
            CalibratedEqOddsPostprocessing(UNPRIV, PRIV).fit(ds_true, bare)

    def test_predict_before_fit(self):
        _, ds_pred = _scored_predictions(n=100)
        with pytest.raises(RuntimeError):
            CalibratedEqOddsPostprocessing(UNPRIV, PRIV).predict(ds_pred)


class TestEqOdds:
    def test_flip_probabilities_valid(self):
        ds_true, ds_pred = _scored_predictions()
        eq = EqOddsPostprocessing(UNPRIV, PRIV, seed=0).fit(ds_true, ds_pred)
        for p in (eq.p2p_priv_, eq.n2p_priv_, eq.p2p_unpriv_, eq.n2p_unpriv_):
            assert 0.0 - 1e-9 <= p <= 1.0 + 1e-9

    def test_reduces_average_abs_odds(self):
        ds_true, ds_pred = _scored_predictions(seed=4)
        before = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        results = []
        for seed in range(5):
            adjusted = EqOddsPostprocessing(UNPRIV, PRIV, seed=seed).fit_predict(
                ds_true, ds_pred
            )
            after = ClassificationMetric(ds_true, adjusted, UNPRIV, PRIV)
            results.append(after.average_abs_odds_difference())
        assert np.mean(results) < before.average_abs_odds_difference()

    def test_seeded_determinism(self):
        ds_true, ds_pred = _scored_predictions(n=500)
        a = EqOddsPostprocessing(UNPRIV, PRIV, seed=3).fit_predict(ds_true, ds_pred)
        b = EqOddsPostprocessing(UNPRIV, PRIV, seed=3).fit_predict(ds_true, ds_pred)
        assert np.array_equal(a.labels, b.labels)

    def test_predict_before_fit(self):
        _, ds_pred = _scored_predictions(n=100)
        with pytest.raises(RuntimeError):
            EqOddsPostprocessing(UNPRIV, PRIV).predict(ds_pred)

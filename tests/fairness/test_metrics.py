"""Unit tests for fairness metrics."""

import numpy as np
import pytest

from repro.fairness import (
    BinaryLabelDataset,
    BinaryLabelDatasetMetric,
    ClassificationMetric,
    generalized_entropy_index_from_benefits,
)

from .conftest import PRIV, UNPRIV, make_biased_dataset


def _handmade():
    """Small dataset with exactly known confusion matrices per group.

    privileged (sex=1):  true = [1, 1, 0, 0], pred = [1, 0, 1, 0]
    unprivileged (sex=0): true = [1, 0, 0, 0], pred = [0, 0, 0, 1]
    """
    labels = np.array([1, 1, 0, 0, 1, 0, 0, 0], dtype=np.float64)
    preds = np.array([1, 0, 1, 0, 0, 0, 0, 1], dtype=np.float64)
    sex = np.array([1, 1, 1, 1, 0, 0, 0, 0], dtype=np.float64)
    ds_true = BinaryLabelDataset(
        features=np.zeros((8, 1)),
        labels=labels,
        protected_attributes=sex,
        protected_attribute_names=["sex"],
    )
    ds_pred = ds_true.with_predictions(labels=preds)
    return ds_true, ds_pred


class TestDatasetMetric:
    def test_base_rates(self):
        ds = make_biased_dataset(n=4000, priv_base_rate=0.6, unpriv_base_rate=0.3)
        metric = BinaryLabelDatasetMetric(ds, UNPRIV, PRIV)
        assert metric.base_rate(privileged=True) == pytest.approx(0.6, abs=0.05)
        assert metric.base_rate(privileged=False) == pytest.approx(0.3, abs=0.05)

    def test_disparate_impact_matches_ratio(self):
        ds = make_biased_dataset(n=4000)
        metric = BinaryLabelDatasetMetric(ds, UNPRIV, PRIV)
        expected = metric.base_rate(False) / metric.base_rate(True)
        assert metric.disparate_impact() == pytest.approx(expected)

    def test_statistical_parity_sign(self):
        ds = make_biased_dataset(n=2000)
        metric = BinaryLabelDatasetMetric(ds, UNPRIV, PRIV)
        assert metric.statistical_parity_difference() < 0

    def test_num_positives_weighted(self):
        ds = make_biased_dataset(n=200)
        ds.instance_weights[:] = 2.0
        metric = BinaryLabelDatasetMetric(ds, UNPRIV, PRIV)
        assert metric.num_positives() == pytest.approx(2.0 * ds.favorable_mask().sum())

    def test_overlapping_groups_rejected(self):
        ds = make_biased_dataset(n=50)
        with pytest.raises(ValueError, match="overlap"):
            BinaryLabelDatasetMetric(ds, [{"sex": 1.0}], [{"sex": 1.0}])

    def test_group_access_without_spec_raises(self):
        ds = make_biased_dataset(n=50)
        metric = BinaryLabelDatasetMetric(ds)
        with pytest.raises(ValueError, match="not provided"):
            metric.base_rate(privileged=True)

    def test_consistency_of_constant_labels_is_one(self):
        ds = make_biased_dataset(n=100)
        ds.labels[:] = 1.0
        metric = BinaryLabelDatasetMetric(ds, UNPRIV, PRIV)
        assert metric.consistency() == pytest.approx(1.0)

    def test_consistency_penalizes_label_noise(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        clean = BinaryLabelDataset(
            features=X,
            labels=(X[:, 0] > 0).astype(float),
            protected_attributes=np.zeros(200),
            protected_attribute_names=["sex"],
        )
        noisy = BinaryLabelDataset(
            features=X,
            labels=rng.integers(0, 2, 200).astype(float),
            protected_attributes=np.zeros(200),
            protected_attribute_names=["sex"],
        )
        c_clean = BinaryLabelDatasetMetric(clean).consistency()
        c_noisy = BinaryLabelDatasetMetric(noisy).consistency()
        assert c_clean > c_noisy

    def test_differential_fairness_zero_for_identical_rates(self):
        ds = make_biased_dataset(
            n=4000, priv_base_rate=0.5, unpriv_base_rate=0.5, seed=3
        )
        metric = BinaryLabelDatasetMetric(ds, UNPRIV, PRIV)
        assert metric.smoothed_empirical_differential_fairness() < 0.15


class TestClassificationMetricPerGroup:
    def test_privileged_confusion_matrix(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        c = metric.binary_confusion_matrix(privileged=True)
        assert c == {"TP": 1.0, "FN": 1.0, "FP": 1.0, "TN": 1.0}

    def test_unprivileged_confusion_matrix(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        c = metric.binary_confusion_matrix(privileged=False)
        assert c == {"TP": 0.0, "FN": 1.0, "FP": 1.0, "TN": 2.0}

    def test_rates(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert metric.true_positive_rate(privileged=True) == 0.5
        assert metric.false_positive_rate(privileged=True) == 0.5
        assert metric.true_positive_rate(privileged=False) == 0.0
        assert metric.false_positive_rate(privileged=False) == pytest.approx(1 / 3)

    def test_rate_identities(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        for privileged in (None, True, False):
            m = metric.performance_measures(privileged)
            assert m["true_positive_rate"] + m["false_negative_rate"] == pytest.approx(1.0)
            assert m["true_negative_rate"] + m["false_positive_rate"] == pytest.approx(1.0)
            assert m["accuracy"] + m["error_rate"] == pytest.approx(1.0)

    def test_performance_measures_has_25_entries(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert len(metric.performance_measures()) == 25

    def test_group_metrics_has_22_entries(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert len(metric.group_metrics()) == 22

    def test_all_metrics_bundle_size(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert len(metric.all_metrics()) == 25 * 3 + 22

    def test_selection_rate(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert metric.selection_rate(privileged=True) == 0.5
        assert metric.selection_rate(privileged=False) == 0.25


class TestClassificationMetricGroupContrasts:
    def test_statistical_parity_difference(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert metric.statistical_parity_difference() == pytest.approx(0.25 - 0.5)

    def test_disparate_impact(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert metric.disparate_impact() == pytest.approx(0.5)

    def test_equal_opportunity_difference(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert metric.equal_opportunity_difference() == pytest.approx(0.0 - 0.5)

    def test_average_odds_difference(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        expected = 0.5 * ((1 / 3 - 0.5) + (0.0 - 0.5))
        assert metric.average_odds_difference() == pytest.approx(expected)

    def test_abs_odds_at_least_signed_odds(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert metric.average_abs_odds_difference() >= abs(
            metric.average_odds_difference()
        )

    def test_perfect_predictions_zero_differences(self):
        ds = make_biased_dataset(n=500)
        pred = ds.with_predictions(labels=ds.labels)
        metric = ClassificationMetric(ds, pred, UNPRIV, PRIV)
        assert metric.equal_opportunity_difference() == pytest.approx(0.0)
        assert metric.error_rate_difference() == pytest.approx(0.0)
        assert metric.theil_index() == pytest.approx(0.0)

    def test_incompatible_datasets_rejected(self):
        a = make_biased_dataset(seed=1)
        b = make_biased_dataset(seed=2)
        with pytest.raises(ValueError):
            ClassificationMetric(a, b.with_predictions(labels=b.labels), UNPRIV, PRIV)


class TestEntropyMetrics:
    def test_equal_benefits_zero_index(self):
        assert generalized_entropy_index_from_benefits(np.ones(10)) == 0.0

    def test_theil_nonnegative(self):
        rng = np.random.default_rng(0)
        benefits = rng.uniform(0.1, 2.0, 100)
        assert generalized_entropy_index_from_benefits(benefits, alpha=1.0) >= 0.0

    def test_more_unequal_is_larger(self):
        even = np.array([1.0, 1.0, 1.0, 1.0])
        uneven = np.array([0.1, 0.1, 0.1, 3.7])
        assert generalized_entropy_index_from_benefits(
            uneven
        ) > generalized_entropy_index_from_benefits(even)

    def test_negative_benefits_rejected(self):
        with pytest.raises(ValueError):
            generalized_entropy_index_from_benefits(np.array([-1.0, 1.0]))

    def test_coefficient_of_variation_relation(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        cov = metric.coefficient_of_variation()
        gei = metric.generalized_entropy_index(alpha=2.0)
        assert cov == pytest.approx(2.0 * np.sqrt(gei))

    def test_between_group_le_total(self):
        ds_true, ds_pred = _handmade()
        metric = ClassificationMetric(ds_true, ds_pred, UNPRIV, PRIV)
        assert metric.between_group_theil_index() <= metric.theil_index() + 1e-12

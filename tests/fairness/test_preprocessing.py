"""Unit tests for reweighing and the disparate impact remover."""

import numpy as np
import pytest

from repro.fairness import (
    BinaryLabelDatasetMetric,
    DisparateImpactRemover,
    Reweighing,
)

from .conftest import PRIV, UNPRIV, make_biased_dataset


class TestReweighing:
    def test_weighted_parity_is_exactly_zero_after_transform(self):
        ds = make_biased_dataset(n=800)
        out = Reweighing(UNPRIV, PRIV).fit_transform(ds)
        metric = BinaryLabelDatasetMetric(out, UNPRIV, PRIV)
        assert metric.statistical_parity_difference() == pytest.approx(0.0, abs=1e-12)

    def test_weighted_disparate_impact_is_one(self):
        ds = make_biased_dataset(n=800)
        out = Reweighing(UNPRIV, PRIV).fit_transform(ds)
        metric = BinaryLabelDatasetMetric(out, UNPRIV, PRIV)
        assert metric.disparate_impact() == pytest.approx(1.0, abs=1e-12)

    def test_total_weight_preserved(self):
        ds = make_biased_dataset(n=500)
        out = Reweighing(UNPRIV, PRIV).fit_transform(ds)
        assert out.instance_weights.sum() == pytest.approx(
            ds.instance_weights.sum(), rel=1e-9
        )

    def test_features_and_labels_untouched(self):
        ds = make_biased_dataset(n=300)
        out = Reweighing(UNPRIV, PRIV).fit_transform(ds)
        assert np.array_equal(out.features, ds.features)
        assert np.array_equal(out.labels, ds.labels)

    def test_unprivileged_positives_upweighted(self):
        ds = make_biased_dataset(n=800, priv_base_rate=0.7, unpriv_base_rate=0.2)
        out = Reweighing(UNPRIV, PRIV).fit_transform(ds)
        unpriv_pos = ds.group_mask(UNPRIV) & ds.favorable_mask()
        priv_pos = ds.group_mask(PRIV) & ds.favorable_mask()
        assert out.instance_weights[unpriv_pos].mean() > 1.0
        assert out.instance_weights[priv_pos].mean() < 1.0

    def test_transform_applies_train_factors_to_new_data(self):
        train = make_biased_dataset(seed=1, n=800)
        test = make_biased_dataset(seed=2, n=200)
        rw = Reweighing(UNPRIV, PRIV).fit(train)
        out = rw.transform(test)
        # factors come from train, so test weights are train-factor multiples
        factors = set(np.round(list(rw.factors_.values()), 10))
        observed = set(np.round(np.unique(out.instance_weights), 10))
        assert observed <= factors

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            Reweighing(UNPRIV, PRIV).transform(make_biased_dataset(n=50))

    def test_respects_existing_weights(self):
        ds = make_biased_dataset(n=400)
        ds.instance_weights[:] = 3.0
        out = Reweighing(UNPRIV, PRIV).fit_transform(ds)
        metric = BinaryLabelDatasetMetric(out, UNPRIV, PRIV)
        assert metric.statistical_parity_difference() == pytest.approx(0.0, abs=1e-12)


class TestDisparateImpactRemover:
    def test_zero_repair_is_identity(self):
        ds = make_biased_dataset(n=400, feature_shift=2.0)
        out = DisparateImpactRemover(repair_level=0.0).fit_transform(ds)
        assert np.allclose(out.features, ds.features)

    def test_full_repair_aligns_group_distributions(self):
        ds = make_biased_dataset(n=2000, feature_shift=3.0, seed=5)
        out = DisparateImpactRemover(repair_level=1.0).fit_transform(ds)
        sex = ds.protected_column("sex")
        j = ds.feature_names.index("proxy")
        priv_values = out.features[sex == 1.0, j]
        unpriv_values = out.features[sex == 0.0, j]
        # group medians should be nearly identical after full repair
        assert abs(np.median(priv_values) - np.median(unpriv_values)) < 0.15
        # before repair they were far apart
        assert (
            abs(
                np.median(ds.features[sex == 1.0, j])
                - np.median(ds.features[sex == 0.0, j])
            )
            > 2.0
        )

    def test_partial_repair_interpolates(self):
        ds = make_biased_dataset(n=1000, feature_shift=3.0)
        half = DisparateImpactRemover(repair_level=0.5).fit_transform(ds)
        full = DisparateImpactRemover(repair_level=1.0).fit_transform(ds)
        j = ds.feature_names.index("proxy")
        sex = ds.protected_column("sex")
        gap = lambda feats: abs(
            np.median(feats[sex == 1.0, j]) - np.median(feats[sex == 0.0, j])
        )
        assert gap(full.features) < gap(half.features) < gap(ds.features)

    def test_rank_order_preserved_within_group(self):
        ds = make_biased_dataset(n=500, feature_shift=2.0)
        out = DisparateImpactRemover(repair_level=1.0).fit_transform(ds)
        sex = ds.protected_column("sex")
        j = ds.feature_names.index("proxy")
        for value in (0.0, 1.0):
            original = ds.features[sex == value, j]
            repaired = out.features[sex == value, j]
            order = np.argsort(original, kind="mergesort")
            diffs = np.diff(repaired[order])
            assert (diffs >= -1e-9).all()

    def test_labels_and_weights_untouched(self):
        ds = make_biased_dataset(n=300)
        out = DisparateImpactRemover(repair_level=1.0).fit_transform(ds)
        assert np.array_equal(out.labels, ds.labels)
        assert np.array_equal(out.instance_weights, ds.instance_weights)

    def test_fit_on_train_transform_test_is_leak_free(self):
        train = make_biased_dataset(seed=1, n=1000, feature_shift=3.0)
        test = make_biased_dataset(seed=2, n=300, feature_shift=3.0)
        remover = DisparateImpactRemover(repair_level=1.0).fit(train)
        before = test.features.copy()
        out = remover.transform(test)
        # test features change, but train statistics drive the mapping
        assert not np.allclose(out.features, before)
        # refitting on test would give a (slightly) different mapping
        refit = DisparateImpactRemover(repair_level=1.0).fit_transform(test)
        assert not np.allclose(refit.features, out.features)

    def test_features_to_repair_restriction(self):
        ds = make_biased_dataset(n=400, feature_shift=3.0)
        out = DisparateImpactRemover(
            repair_level=1.0, features_to_repair=["proxy"]
        ).fit_transform(ds)
        j_noise = ds.feature_names.index("noise")
        j_signal = ds.feature_names.index("signal")
        assert np.allclose(out.features[:, j_noise], ds.features[:, j_noise])
        assert np.allclose(out.features[:, j_signal], ds.features[:, j_signal])

    def test_invalid_repair_level(self):
        with pytest.raises(ValueError):
            DisparateImpactRemover(repair_level=1.5)

    def test_unknown_feature_rejected(self):
        ds = make_biased_dataset(n=100)
        with pytest.raises(KeyError):
            DisparateImpactRemover(features_to_repair=["nope"]).fit(ds)

    def test_single_group_rejected(self):
        ds = make_biased_dataset(n=100)
        ds.protected_attributes[:, 0] = 1.0
        with pytest.raises(ValueError, match="single value"):
            DisparateImpactRemover().fit(ds)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            DisparateImpactRemover().transform(make_biased_dataset(n=50))

"""Shared fixtures for fairness tests: synthetic biased datasets."""

import numpy as np
import pytest

from repro.fairness import BinaryLabelDataset

PRIV = [{"sex": 1.0}]
UNPRIV = [{"sex": 0.0}]


def make_biased_dataset(
    seed=0,
    n=600,
    priv_fraction=0.5,
    priv_base_rate=0.6,
    unpriv_base_rate=0.3,
    feature_shift=1.0,
):
    """Binary dataset where the favorable label and one feature correlate
    with the protected attribute."""
    rng = np.random.default_rng(seed)
    sex = (rng.random(n) < priv_fraction).astype(np.float64)
    rates = np.where(sex == 1.0, priv_base_rate, unpriv_base_rate)
    labels = (rng.random(n) < rates).astype(np.float64)
    x0 = rng.normal(labels * 2.0, 1.0)  # label-informative
    x1 = rng.normal(sex * feature_shift, 1.0)  # group-informative
    x2 = rng.normal(0.0, 1.0, n)  # noise
    return BinaryLabelDataset(
        features=np.column_stack([x0, x1, x2]),
        labels=labels,
        protected_attributes=sex,
        protected_attribute_names=["sex"],
        feature_names=["signal", "proxy", "noise"],
    )


@pytest.fixture
def biased():
    return make_biased_dataset()


@pytest.fixture
def priv_groups():
    return PRIV


@pytest.fixture
def unpriv_groups():
    return UNPRIV

"""Unit tests for in-processing interventions."""

import numpy as np
import pytest

from repro.fairness import (
    AdversarialDebiasing,
    ClassificationMetric,
    PrejudiceRemover,
)

from .conftest import PRIV, UNPRIV, make_biased_dataset


class TestAdversarialDebiasing:
    def test_plain_mode_learns(self):
        ds = make_biased_dataset(n=800)
        model = AdversarialDebiasing(UNPRIV, PRIV, debias=False, seed=0).fit(ds)
        pred = model.predict(ds)
        accuracy = (pred.labels == ds.labels).mean()
        assert accuracy > 0.7

    def test_debiasing_reduces_disparate_impact_gap(self):
        ds = make_biased_dataset(n=1500, feature_shift=2.5, seed=2)
        plain = AdversarialDebiasing(UNPRIV, PRIV, debias=False, seed=0).fit(ds)
        debiased = AdversarialDebiasing(
            UNPRIV, PRIV, debias=True, adversary_loss_weight=0.5, seed=0
        ).fit(ds)
        m_plain = ClassificationMetric(ds, plain.predict(ds), UNPRIV, PRIV)
        m_debiased = ClassificationMetric(ds, debiased.predict(ds), UNPRIV, PRIV)
        gap = lambda m: abs(1.0 - m.disparate_impact())
        assert gap(m_debiased) < gap(m_plain)

    def test_seeded_determinism(self):
        ds = make_biased_dataset(n=400)
        a = AdversarialDebiasing(UNPRIV, PRIV, seed=11).fit(ds)
        b = AdversarialDebiasing(UNPRIV, PRIV, seed=11).fit(ds)
        assert np.allclose(a.coef_, b.coef_)

    def test_prediction_carries_scores(self):
        ds = make_biased_dataset(n=200)
        pred = AdversarialDebiasing(UNPRIV, PRIV, seed=0).fit(ds).predict(ds)
        assert pred.scores is not None
        assert ((pred.scores >= 0) & (pred.scores <= 1)).all()

    def test_predict_before_fit(self):
        ds = make_biased_dataset(n=50)
        with pytest.raises(RuntimeError):
            AdversarialDebiasing(UNPRIV, PRIV).predict(ds)


class TestPrejudiceRemover:
    def test_eta_zero_is_plain_logistic(self):
        ds = make_biased_dataset(n=600)
        model = PrejudiceRemover(UNPRIV, PRIV, eta=0.0).fit(ds)
        pred = model.predict(ds)
        assert (pred.labels == ds.labels).mean() > 0.7

    def test_large_eta_shrinks_parity_gap(self):
        ds = make_biased_dataset(n=1200, feature_shift=2.5, seed=3)
        plain = PrejudiceRemover(UNPRIV, PRIV, eta=0.0).fit(ds)
        fair = PrejudiceRemover(UNPRIV, PRIV, eta=25.0).fit(ds)
        gap = lambda model: abs(
            ClassificationMetric(
                ds, model.predict(ds), UNPRIV, PRIV
            ).statistical_parity_difference()
        )
        assert gap(fair) < gap(plain)

    def test_negative_eta_rejected(self):
        with pytest.raises(ValueError):
            PrejudiceRemover(UNPRIV, PRIV, eta=-1.0)

    def test_single_group_training_data_rejected(self):
        ds = make_biased_dataset(n=100)
        ds.protected_attributes[:, 0] = 1.0
        with pytest.raises(ValueError, match="both groups"):
            PrejudiceRemover(UNPRIV, PRIV).fit(ds)

    def test_deterministic(self):
        ds = make_biased_dataset(n=300)
        a = PrejudiceRemover(UNPRIV, PRIV, eta=1.0).fit(ds)
        b = PrejudiceRemover(UNPRIV, PRIV, eta=1.0).fit(ds)
        assert np.allclose(a.coef_, b.coef_)

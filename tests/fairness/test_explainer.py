"""Unit tests for the metric text explainer."""

import numpy as np
import pytest

from repro.fairness import (
    BinaryLabelDataset,
    ClassificationMetric,
    MetricTextExplainer,
)

from .conftest import PRIV, UNPRIV, make_biased_dataset


def _metric(seed=0, di_target="biased"):
    ds = make_biased_dataset(seed=seed, n=800)
    if di_target == "fair":
        pred = ds.with_predictions(labels=ds.labels)
    else:
        # bias predictions toward the privileged group
        rng = np.random.default_rng(seed)
        sex = ds.protected_column("sex")
        labels = ((rng.random(800) < 0.3) | (sex == 1.0)).astype(float)
        pred = ds.with_predictions(labels=labels)
    return ClassificationMetric(ds, pred, UNPRIV, PRIV)


class TestExplanations:
    def test_accuracy_sentence_has_percentages(self):
        text = MetricTextExplainer(_metric()).accuracy()
        assert "Overall accuracy" in text
        assert "%" in text

    def test_disparate_impact_four_fifths_violation(self):
        text = MetricTextExplainer(_metric()).disparate_impact()
        assert "violates the four-fifths rule" in text

    def test_disparate_impact_satisfied_for_perfect_predictions_on_mild_data(self):
        ds = make_biased_dataset(n=800, priv_base_rate=0.5, unpriv_base_rate=0.45)
        pred = ds.with_predictions(labels=ds.labels)
        metric = ClassificationMetric(ds, pred, UNPRIV, PRIV)
        text = MetricTextExplainer(metric).disparate_impact()
        assert "satisfies the four-fifths rule" in text

    def test_parity_direction_wording(self):
        text = MetricTextExplainer(_metric()).statistical_parity_difference()
        assert "fewer favorable predictions" in text

    def test_equal_opportunity_sentence(self):
        text = MetricTextExplainer(_metric()).equal_opportunity_difference()
        assert "TPR gap" in text

    def test_error_rate_sentence(self):
        text = MetricTextExplainer(_metric()).error_rate_disparity()
        assert "Error rates" in text

    def test_theil_sentence(self):
        text = MetricTextExplainer(_metric(di_target="fair")).theil_index()
        assert "0.0000" in text

    def test_explain_all_and_report(self):
        explainer = MetricTextExplainer(_metric())
        sentences = explainer.explain_all()
        assert len(sentences) == 6
        assert explainer.report().count("\n") == 5

    def test_undefined_di_handled(self):
        ds = make_biased_dataset(n=100)
        pred = ds.with_predictions(labels=np.zeros(100))  # nobody favorable
        metric = ClassificationMetric(ds, pred, UNPRIV, PRIV)
        text = MetricTextExplainer(metric).disparate_impact()
        assert "undefined" in text

    def test_gap_phrase_small_vs_substantial(self):
        assert "essentially no gap" in MetricTextExplainer._gap_phrase(0.001)
        assert "small" in MetricTextExplainer._gap_phrase(0.02)
        assert "substantial" in MetricTextExplainer._gap_phrase(0.2)
        assert "privileged" in MetricTextExplainer._gap_phrase(0.2)

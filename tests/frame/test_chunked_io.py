"""Chunked CSV reader: batch-wise reads must equal the whole-file read.

``read_csv_chunked`` promises that concatenating its batches reproduces
``read_csv`` exactly — same column kinds, same category tables, same
missing sentinels (NaN / code ``-1``) — on both the quote-free fast path
and the csv-module fallback, with kinds pinned from the first batch.
"""

import os

import numpy as np
import pytest

from repro.frame import (
    CATEGORICAL,
    NUMERIC,
    Column,
    DataFrame,
    concat_rows,
    read_csv,
    read_csv_chunked,
    write_csv,
)


def roundtrip_frame(tmp_path, frame, chunk_rows, **kwargs):
    path = os.path.join(tmp_path, "frame.csv")
    write_csv(frame, path)
    whole = read_csv(path, **kwargs)
    batches = list(read_csv_chunked(path, chunk_rows=chunk_rows, **kwargs))
    return whole, batches


def mixed_frame(n=997, seed=3):
    rng = np.random.default_rng(seed)
    age = rng.integers(18, 90, n).astype(float)
    age[rng.random(n) < 0.1] = np.nan
    score = np.round(rng.normal(size=n), 3)
    city_pool = ["amsterdam", "berlin", "cairo", "delhi", ""]
    city = [city_pool[i] for i in rng.integers(0, len(city_pool), n)]
    return DataFrame([
        Column.numeric("age", age),
        Column.numeric("score", score),
        Column.categorical("city", city),
    ])


class TestChunkedRoundTrip:
    @pytest.mark.parametrize("chunk_rows", [1, 7, 100, 10_000])
    def test_batches_concat_to_whole_read(self, tmp_path, chunk_rows):
        whole, batches = roundtrip_frame(tmp_path, mixed_frame(), chunk_rows)
        expected = -(-whole.num_rows // min(chunk_rows, whole.num_rows))
        assert len(batches) == expected
        assert all(batch.num_rows <= chunk_rows for batch in batches)
        assert concat_rows(batches).equals(whole)

    def test_batches_share_kinds_and_missing_sentinels(self, tmp_path):
        whole, batches = roundtrip_frame(tmp_path, mixed_frame(), 100)
        for batch in batches:
            assert batch.columns == whole.columns
            for name in batch.columns:
                assert batch.col(name).kind == whole.col(name).kind
        # numeric missing is NaN, categorical missing is code -1, in
        # exactly the rows the whole-file read marks
        recon = concat_rows(batches)
        np.testing.assert_array_equal(
            recon.col("age").missing_mask(), whole.col("age").missing_mask()
        )
        np.testing.assert_array_equal(
            recon.col("city").codes == -1, whole.col("city").codes == -1
        )

    def test_per_batch_category_tables_are_local_but_decode_equal(self, tmp_path):
        # a batch only dictionary-encodes the categories it saw; the
        # *decoded* values must still agree with the whole-file read
        whole, batches = roundtrip_frame(tmp_path, mixed_frame(), 50)
        start = 0
        decoded_whole = whole.col("city").decoded()
        for batch in batches:
            decoded = batch.col("city").decoded()
            np.testing.assert_array_equal(
                decoded, decoded_whole[start : start + batch.num_rows]
            )
            start += batch.num_rows

    def test_quote_fallback_with_embedded_newlines(self, tmp_path):
        tricky = ["a,b", "line1\nline2", 'quo"te', "plain", "end,"] * 101
        frame = DataFrame([
            Column.categorical("tricky", tricky),
            Column.numeric("x", np.arange(len(tricky), dtype=float)),
        ])
        whole, batches = roundtrip_frame(tmp_path, frame, 37)
        assert concat_rows(batches).equals(whole)

    def test_quoted_header_and_crlf(self, tmp_path):
        path = os.path.join(tmp_path, "crlf.csv")
        with open(path, "w", newline="") as handle:
            handle.write('"name,full",value\r\na,1\r\nb,2\r\n')
        whole = read_csv(path)
        batches = list(read_csv_chunked(path, chunk_rows=1))
        assert concat_rows(batches).equals(whole)
        assert whole.columns == ["name,full", "value"]

    def test_blank_lines_are_skipped_like_read_csv(self, tmp_path):
        path = os.path.join(tmp_path, "blanks.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n1,x\n\n2,y\n\n\n3,z\n")
        whole = read_csv(path)
        recon = concat_rows(list(read_csv_chunked(path, chunk_rows=2)))
        assert recon.equals(whole)
        assert recon.num_rows == 3


class TestKindPinning:
    def test_first_chunk_inference_pins_later_chunks(self, tmp_path):
        # "1"/"2" in the first batch parse as floats, but the column
        # must stay categorical if pinned explicitly
        path = os.path.join(tmp_path, "pin.csv")
        with open(path, "w") as handle:
            handle.write("code,x\n" + "".join(f"{i},{i}\n" for i in range(10)))
        inferred = concat_rows(list(read_csv_chunked(path, chunk_rows=3)))
        assert inferred.col("code").kind == NUMERIC
        pinned = concat_rows(
            list(read_csv_chunked(path, chunk_rows=3, kinds={"code": CATEGORICAL}))
        )
        assert pinned.col("code").kind == CATEGORICAL
        assert read_csv(path, kinds={"code": CATEGORICAL}).equals(pinned)

    def test_numeric_columns_parameter(self, tmp_path):
        path = os.path.join(tmp_path, "numcols.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n1,x\n2,y\n3,z\n")
        recon = concat_rows(
            list(read_csv_chunked(path, chunk_rows=2, numeric_columns=["a"]))
        )
        assert recon.col("a").kind == NUMERIC

    def test_late_chunk_breaking_inference_names_the_fix(self, tmp_path):
        # the first batch is all-numeric, a later batch holds a string:
        # whole-file inference would have made the column categorical,
        # chunked inference pinned numeric — the error says what to pass
        path = os.path.join(tmp_path, "drift.csv")
        with open(path, "w") as handle:
            handle.write("v\n" + "".join(f"{i}\n" for i in range(50)) + "oops\n")
        with pytest.raises(ValueError, match="kinds=\\{'v': 'categorical'\\}"):
            list(read_csv_chunked(path, chunk_rows=10))
        fixed = concat_rows(
            list(read_csv_chunked(path, chunk_rows=10, kinds={"v": CATEGORICAL}))
        )
        assert fixed.equals(read_csv(path))


class TestChunkedErrors:
    def test_empty_file(self, tmp_path):
        path = os.path.join(tmp_path, "empty.csv")
        open(path, "w").close()
        with pytest.raises(ValueError, match="empty CSV"):
            list(read_csv_chunked(path))

    def test_header_only(self, tmp_path):
        path = os.path.join(tmp_path, "header.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            list(read_csv_chunked(path))

    def test_ragged_row_numbered_globally(self, tmp_path):
        path = os.path.join(tmp_path, "ragged.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n" + "".join(f"{i},{i}\n" for i in range(10)))
            handle.write("too,many,fields\n")
        # data row 11 -> file row 12, regardless of which batch held it
        with pytest.raises(ValueError, match="row 12"):
            list(read_csv_chunked(path, chunk_rows=4))
        with pytest.raises(ValueError, match="row 12"):
            read_csv(path)

    def test_chunk_rows_validated(self, tmp_path):
        path = os.path.join(tmp_path, "x.csv")
        with open(path, "w") as handle:
            handle.write("a\n1\n")
        with pytest.raises(ValueError, match="chunk_rows"):
            list(read_csv_chunked(path, chunk_rows=0))

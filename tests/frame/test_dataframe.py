"""Unit tests for repro.frame.dataframe."""

import numpy as np
import pytest

from repro.frame import (
    CATEGORICAL,
    NUMERIC,
    Column,
    DataFrame,
    concat_rows,
    train_validation_test_masks,
)


@pytest.fixture
def frame():
    return DataFrame.from_dict(
        {
            "age": [25.0, None, 40.0, 31.0],
            "job": ["clerk", "smith", None, "clerk"],
            "income": [100.0, 200.0, 300.0, 400.0],
        }
    )


class TestConstruction:
    def test_from_dict_infers_kinds(self, frame):
        assert frame.kinds() == {
            "age": NUMERIC,
            "job": CATEGORICAL,
            "income": NUMERIC,
        }

    def test_from_dict_kind_override(self):
        frame = DataFrame.from_dict({"zip": [10001, 10002]}, kinds={"zip": CATEGORICAL})
        assert frame.col("zip").is_categorical

    def test_from_rows(self):
        frame = DataFrame.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert frame.shape == (2, 2)
        assert list(frame["b"]) == ["x", "y"]

    def test_from_rows_missing_key_becomes_missing_value(self):
        frame = DataFrame.from_rows(
            [{"a": 1.0, "b": "x"}, {"a": 2.0}], column_order=["a", "b"]
        )
        assert frame["b"][1] is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="differing lengths"):
            DataFrame([Column.numeric("a", [1.0]), Column.numeric("b", [1.0, 2.0])])

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError, match="duplicate column names"):
            DataFrame([Column.numeric("a", [1.0]), Column.numeric("a", [2.0])])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DataFrame([])


class TestBasics:
    def test_shape(self, frame):
        assert frame.shape == (4, 3)

    def test_contains(self, frame):
        assert "age" in frame
        assert "nope" not in frame

    def test_getitem_returns_values(self, frame):
        assert frame["income"][2] == 300.0

    def test_unknown_column_raises_keyerror_with_alternatives(self, frame):
        with pytest.raises(KeyError, match="available"):
            frame.col("salary")

    def test_numeric_and_categorical_column_lists(self, frame):
        assert frame.numeric_columns() == ["age", "income"]
        assert frame.categorical_columns() == ["job"]


class TestSelection:
    def test_select_projects_and_orders(self, frame):
        sub = frame.select(["income", "age"])
        assert sub.columns == ["income", "age"]

    def test_drop(self, frame):
        assert frame.drop(["job"]).columns == ["age", "income"]

    def test_drop_accepts_single_name(self, frame):
        assert frame.drop("job").columns == ["age", "income"]

    def test_drop_absent_raises(self, frame):
        with pytest.raises(KeyError, match="absent"):
            frame.drop(["nope"])

    def test_take(self, frame):
        sub = frame.take([3, 0])
        assert list(sub["income"]) == [400.0, 100.0]

    def test_mask(self, frame):
        sub = frame.mask([True, False, False, True])
        assert sub.num_rows == 2
        assert list(sub["job"]) == ["clerk", "clerk"]

    def test_head(self, frame):
        assert frame.head(2).num_rows == 2

    def test_head_larger_than_frame(self, frame):
        assert frame.head(100).num_rows == 4


class TestMutationByCopy:
    def test_with_values_adds_column(self, frame):
        out = frame.with_values("bonus", [1.0, 2.0, 3.0, 4.0])
        assert "bonus" in out
        assert "bonus" not in frame

    def test_with_values_replaces_preserving_position(self, frame):
        out = frame.with_values("age", [1.0, 2.0, 3.0, 4.0])
        assert out.columns == frame.columns
        assert list(out["age"]) == [1.0, 2.0, 3.0, 4.0]

    def test_with_values_replacement_keeps_kind(self):
        frame = DataFrame.from_dict({"code": ["1", "2"]}, kinds={"code": CATEGORICAL})
        out = frame.with_values("code", [3, 4])
        assert out.col("code").is_categorical

    def test_with_column_length_mismatch_raises(self, frame):
        with pytest.raises(ValueError, match="column length"):
            frame.with_column(Column.numeric("z", [1.0]))

    def test_rename(self, frame):
        out = frame.rename({"job": "occupation"})
        assert out.columns == ["age", "occupation", "income"]

    def test_copy_is_deep_for_values(self, frame):
        out = frame.copy()
        out["income"][0] = -1.0
        assert frame["income"][0] == 100.0


class TestMissing:
    def test_missing_mask_any_column(self, frame):
        assert list(frame.missing_mask()) == [False, True, True, False]

    def test_missing_mask_restricted_columns(self, frame):
        assert list(frame.missing_mask(["age"])) == [False, True, False, False]

    def test_dropna(self, frame):
        out = frame.dropna()
        assert out.num_rows == 2
        assert list(out["income"]) == [100.0, 400.0]

    def test_dropna_restricted(self, frame):
        out = frame.dropna(["job"])
        assert out.num_rows == 3

    def test_num_incomplete_rows(self, frame):
        assert frame.num_incomplete_rows() == 2


class TestConversion:
    def test_to_rows_roundtrip_shape(self, frame):
        rows = frame.to_rows()
        assert len(rows) == 4
        assert rows[0]["job"] == "clerk"

    def test_to_matrix_default_numeric(self, frame):
        m = frame.to_matrix()
        assert m.shape == (4, 2)

    def test_to_matrix_on_categorical_raises(self, frame):
        with pytest.raises(TypeError):
            frame.to_matrix(["job"])

    def test_to_matrix_empty_selection(self, frame):
        m = frame.to_matrix([])
        assert m.shape == (4, 0)

    def test_equals(self, frame):
        assert frame.equals(frame.copy())

    def test_not_equals_after_edit(self, frame):
        other = frame.with_values("income", [0.0, 0.0, 0.0, 0.0])
        assert not frame.equals(other)


class TestConcatRows:
    def test_concat_stacks(self, frame):
        merged = concat_rows([frame, frame])
        assert merged.num_rows == 8

    def test_concat_schema_mismatch(self, frame):
        other = frame.select(["age", "income", "job"])
        with pytest.raises(ValueError, match="schema mismatch"):
            concat_rows([frame, other])

    def test_concat_preserves_missing(self, frame):
        merged = concat_rows([frame, frame])
        assert merged["job"][2] is None and merged["job"][6] is None


class TestSplitMasks:
    def test_masks_partition_rows(self):
        train, val, test = train_validation_test_masks(100, 0.7, 0.1, seed=7)
        total = train.astype(int) + val.astype(int) + test.astype(int)
        assert (total == 1).all()

    def test_masks_sizes(self):
        train, val, test = train_validation_test_masks(100, 0.7, 0.1, seed=7)
        assert train.sum() == 70 and val.sum() == 10 and test.sum() == 20

    def test_masks_deterministic_per_seed(self):
        a = train_validation_test_masks(50, 0.7, 0.1, seed=3)
        b = train_validation_test_masks(50, 0.7, 0.1, seed=3)
        for x, y in zip(a, b):
            assert (x == y).all()

    def test_masks_vary_with_seed(self):
        a = train_validation_test_masks(200, 0.7, 0.1, seed=1)[0]
        b = train_validation_test_masks(200, 0.7, 0.1, seed=2)[0]
        assert (a != b).any()

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            train_validation_test_masks(10, 0.9, 0.2, seed=0)
        with pytest.raises(ValueError):
            train_validation_test_masks(10, 0.0, 0.1, seed=0)

"""Frame store: streamed spills must be byte-identical to in-memory reads.

The store's contract is exactness, not approximation: a CSV spilled
batch-by-batch through ``FrameStoreWriter`` loads back (memory-mapped)
with per-column bytes equal to ``read_csv`` of the same file — including
the categorical code canonicalization that rewrites provisional
first-seen ids into sorted-table ranks at close time.
"""

import os

import numpy as np
import pytest

from repro.frame import (
    Column,
    DataFrame,
    FrameStore,
    FrameStoreWriter,
    read_csv,
    spill_csv,
    write_csv,
)


def mixed_frame(n=500, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    x[rng.random(n) < 0.15] = np.nan
    pool = ["zebra", "alpha", "mid", ""]
    labels = [pool[i] for i in rng.integers(0, len(pool), n)]
    return DataFrame([
        Column.numeric("x", x),
        Column.numeric("count", rng.integers(0, 50, n).astype(float)),
        Column.categorical("label", labels),
    ])


def assert_store_equals_frame(store, frame):
    loaded = store.frame()
    assert loaded.columns == frame.columns
    assert store.n_rows == frame.num_rows
    for name in frame.columns:
        a, b = frame.col(name), loaded.col(name)
        assert a.kind == b.kind
        if a.is_numeric:
            assert np.asarray(b.values).tobytes() == a.values.tobytes()
        else:
            assert list(b.categories) == list(a.categories)
            assert np.asarray(b.codes).tobytes() == a.codes.tobytes()


class TestSpillRoundTrip:
    @pytest.mark.parametrize("chunk_rows", [1, 37, 100_000])
    def test_spilled_csv_equals_read_csv(self, tmp_path, chunk_rows):
        frame = mixed_frame()
        path = os.path.join(tmp_path, "data.csv")
        write_csv(frame, path)
        store = spill_csv(
            path, os.path.join(tmp_path, "store"), chunk_rows=chunk_rows
        )
        assert_store_equals_frame(store, read_csv(path))

    def test_quoted_csv_spills_identically(self, tmp_path):
        tricky = ["a,b", "two\nlines", 'quo"te', "plain"] * 50
        frame = DataFrame([
            Column.categorical("tricky", tricky),
            Column.numeric("i", np.arange(len(tricky), dtype=float)),
        ])
        path = os.path.join(tmp_path, "tricky.csv")
        write_csv(frame, path)
        store = spill_csv(path, os.path.join(tmp_path, "store"), chunk_rows=33)
        assert_store_equals_frame(store, read_csv(path))

    def test_reopen_after_spill(self, tmp_path):
        frame = mixed_frame(100)
        path = os.path.join(tmp_path, "data.csv")
        write_csv(frame, path)
        spill_csv(path, os.path.join(tmp_path, "store"), chunk_rows=7)
        reopened = FrameStore.open(os.path.join(tmp_path, "store"))
        assert_store_equals_frame(reopened, read_csv(path))


class TestWriter:
    def test_category_canonicalization_across_batches(self, tmp_path):
        # batch 2 introduces categories that sort *before* batch 1's, so
        # the close-time remap must rewrite batch 1's provisional codes
        first = DataFrame([Column.categorical("c", ["zulu", "mike", "zulu"])])
        second = DataFrame([Column.categorical("c", ["alpha", "zulu", "bravo"])])
        with FrameStoreWriter(os.path.join(tmp_path, "store")) as writer:
            writer.append(first)
            writer.append(second)
        store = FrameStore.open(os.path.join(tmp_path, "store"))
        column = store.column("c")
        assert list(column.categories) == ["alpha", "bravo", "mike", "zulu"]
        assert list(column.decoded()) == [
            "zulu", "mike", "zulu", "alpha", "zulu", "bravo",
        ]

    def test_missing_codes_survive_the_remap(self, tmp_path):
        batch = DataFrame(
            [Column.from_codes("c", np.asarray([1, -1, 0, -1], np.int32), ["b", "a"])]
        )
        with FrameStoreWriter(os.path.join(tmp_path, "store")) as writer:
            writer.append(batch)
            writer.append(batch)
        column = FrameStore.open(os.path.join(tmp_path, "store")).column("c")
        assert list(column.categories) == ["a", "b"]
        np.testing.assert_array_equal(np.asarray(column.codes), [0, -1, 1, -1] * 2)

    def test_schema_mismatch_rejected(self, tmp_path):
        writer = FrameStoreWriter(os.path.join(tmp_path, "store"))
        writer.append(DataFrame([Column.numeric("a", np.arange(3.0))]))
        with pytest.raises(ValueError, match="schema"):
            writer.append(DataFrame([Column.categorical("a", ["x", "y", "z"])]))
        writer.abort()

    def test_empty_writer_cannot_close(self, tmp_path):
        writer = FrameStoreWriter(os.path.join(tmp_path, "store"))
        with pytest.raises(ValueError, match="no batches"):
            writer.close()

    def test_overwrite_guard(self, tmp_path):
        root = os.path.join(tmp_path, "store")
        with FrameStoreWriter(root) as writer:
            writer.append(DataFrame([Column.numeric("a", np.arange(3.0))]))
        with pytest.raises(FileExistsError, match="overwrite=True"):
            FrameStoreWriter(root)
        with FrameStoreWriter(root, overwrite=True) as writer:
            writer.append(DataFrame([Column.numeric("a", np.arange(5.0))]))
        assert FrameStore.open(root).n_rows == 5

    def test_aborted_write_leaves_no_loadable_store(self, tmp_path):
        root = os.path.join(tmp_path, "store")
        with pytest.raises(RuntimeError):
            with FrameStoreWriter(root) as writer:
                writer.append(DataFrame([Column.numeric("a", np.arange(3.0))]))
                raise RuntimeError("midway crash")
        with pytest.raises(FileNotFoundError, match="manifest"):
            FrameStore.open(root)

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            FrameStore.open(os.path.join(tmp_path, "nothing"))


class TestStoreAccess:
    def test_columns_are_memory_mapped(self, tmp_path):
        frame = mixed_frame(200)
        path = os.path.join(tmp_path, "data.csv")
        write_csv(frame, path)
        store = spill_csv(path, os.path.join(tmp_path, "store"), chunk_rows=64)
        import mmap

        values = store.column("x").values
        base = values
        while isinstance(getattr(base, "base", None), np.ndarray):
            base = base.base
        assert isinstance(base, np.memmap) or isinstance(
            getattr(base, "base", None), mmap.mmap
        )

    def test_column_lookup_and_missing(self, tmp_path):
        frame = mixed_frame(50)
        path = os.path.join(tmp_path, "data.csv")
        write_csv(frame, path)
        store = spill_csv(path, os.path.join(tmp_path, "store"))
        assert store.columns == frame.columns
        with pytest.raises(KeyError, match="no column"):
            store.column("nope")

    def test_batches_cover_all_rows_in_order(self, tmp_path):
        frame = mixed_frame(157)
        path = os.path.join(tmp_path, "data.csv")
        write_csv(frame, path)
        store = spill_csv(path, os.path.join(tmp_path, "store"), chunk_rows=64)
        batches = list(store.batches(chunk_rows=50))
        assert [b.num_rows for b in batches] == [50, 50, 50, 7]
        from repro.frame import concat_rows

        assert concat_rows(batches).equals(read_csv(path))

    def test_store_feeds_a_tree_fit(self, tmp_path):
        # the point of the store: mmap-backed columns flow straight into
        # matrix assembly and model fitting without materializing rows
        rng = np.random.default_rng(4)
        n = 2000
        frame = DataFrame([
            Column.numeric("f0", rng.integers(0, 9, n).astype(float)),
            Column.numeric("f1", rng.integers(0, 30, n).astype(float)),
            Column.numeric("label", rng.integers(0, 2, n).astype(float)),
        ])
        path = os.path.join(tmp_path, "fit.csv")
        write_csv(frame, path)
        store = spill_csv(path, os.path.join(tmp_path, "store"), chunk_rows=500)
        loaded = store.frame()
        X = np.column_stack([loaded.col("f0").values, loaded.col("f1").values])
        y = np.asarray(loaded.col("label").values)
        from repro.learn import DecisionTreeClassifier

        model = DecisionTreeClassifier(max_depth=4).fit(X, y, presort="histogram")
        assert model.tree_.n_samples == n

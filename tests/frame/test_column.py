"""Unit tests for repro.frame.column."""

import numpy as np
import pytest

from repro.frame import CATEGORICAL, NUMERIC, Column, concat_columns


class TestConstruction:
    def test_numeric_factory_builds_float64(self):
        col = Column.numeric("age", [1, 2, 3])
        assert col.kind == NUMERIC
        assert col.values.dtype == np.float64

    def test_numeric_factory_maps_none_to_nan(self):
        col = Column.numeric("age", [1.0, None, 3.0])
        assert np.isnan(col.values[1])

    def test_categorical_factory_keeps_none(self):
        col = Column.categorical("job", ["a", None, "b"])
        assert col.values[1] is None

    def test_categorical_factory_maps_nan_to_none(self):
        col = Column.categorical("job", ["a", float("nan"), "b"])
        assert col.values[1] is None

    def test_categorical_factory_stringifies(self):
        col = Column.categorical("code", [1, 2])
        assert list(col.values) == ["1", "2"]

    def test_from_values_infers_numeric(self):
        col = Column.from_values("x", [1, 2.5, None])
        assert col.kind == NUMERIC

    def test_from_values_infers_categorical(self):
        col = Column.from_values("x", ["a", "b", None])
        assert col.kind == CATEGORICAL

    def test_from_values_respects_explicit_kind(self):
        col = Column.from_values("x", [1, 2], kind=CATEGORICAL)
        assert col.kind == CATEGORICAL
        assert list(col.values) == ["1", "2"]

    def test_from_values_numpy_numeric_array(self):
        col = Column.from_values("x", np.array([1, 2, 3]))
        assert col.kind == NUMERIC

    def test_from_values_copies_other_column(self):
        original = Column.numeric("x", [1.0, 2.0])
        copy = Column.from_values("y", original)
        copy.values[0] = 99.0
        assert original.values[0] == 1.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown column kind"):
            Column("x", np.array([1.0]), "weird")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            Column("", np.array([1.0]), NUMERIC)


class TestMissing:
    def test_missing_mask_numeric(self):
        col = Column.numeric("x", [1.0, None, 3.0])
        assert list(col.missing_mask()) == [False, True, False]

    def test_missing_mask_categorical(self):
        col = Column.categorical("x", ["a", None])
        assert list(col.missing_mask()) == [False, True]

    def test_num_missing(self):
        col = Column.numeric("x", [None, None, 1.0])
        assert col.num_missing() == 2

    def test_has_missing_false_for_complete(self):
        assert not Column.numeric("x", [1.0, 2.0]).has_missing()

    def test_fill_missing_numeric(self):
        col = Column.numeric("x", [1.0, None]).fill_missing(0.0)
        assert list(col.values) == [1.0, 0.0]

    def test_fill_missing_categorical(self):
        col = Column.categorical("x", ["a", None]).fill_missing("b")
        assert list(col.values) == ["a", "b"]

    def test_fill_missing_returns_copy(self):
        col = Column.numeric("x", [1.0, None])
        col.fill_missing(0.0)
        assert np.isnan(col.values[1])


class TestSelection:
    def test_take_reorders(self):
        col = Column.numeric("x", [10.0, 20.0, 30.0])
        assert list(col.take([2, 0]).values) == [30.0, 10.0]

    def test_mask_filters(self):
        col = Column.categorical("x", ["a", "b", "c"])
        assert list(col.mask([True, False, True]).values) == ["a", "c"]

    def test_mask_length_mismatch_raises(self):
        col = Column.numeric("x", [1.0, 2.0])
        with pytest.raises(ValueError, match="mask length"):
            col.mask([True])

    def test_set_where_numeric(self):
        col = Column.numeric("x", [1.0, 2.0, 3.0])
        out = col.set_where([False, True, True], [9.0, 10.0])
        assert list(out.values) == [1.0, 9.0, 10.0]
        assert list(col.values) == [1.0, 2.0, 3.0]

    def test_set_where_categorical_scalar(self):
        col = Column.categorical("x", ["a", "b"])
        out = col.set_where([True, False], "z")
        assert list(out.values) == ["z", "b"]


class TestSummaries:
    def test_unique_preserves_first_seen_order(self):
        col = Column.categorical("x", ["b", "a", "b", None, "c"])
        assert col.unique() == ["b", "a", "c"]

    def test_value_counts_sorted_by_count(self):
        col = Column.categorical("x", ["a", "b", "b", None])
        assert col.value_counts() == {"b": 2, "a": 1}

    def test_mode(self):
        col = Column.categorical("x", ["a", "b", "b"])
        assert col.mode() == "b"

    def test_mode_all_missing_is_none(self):
        assert Column.categorical("x", [None, None]).mode() is None

    def test_mean_ignores_missing(self):
        col = Column.numeric("x", [1.0, None, 3.0])
        assert col.mean() == 2.0

    def test_mean_on_categorical_raises(self):
        with pytest.raises(TypeError):
            Column.categorical("x", ["a"]).mean()

    def test_min_max(self):
        col = Column.numeric("x", [5.0, None, -1.0])
        assert col.min() == -1.0
        assert col.max() == 5.0

    def test_std_empty_is_nan(self):
        assert np.isnan(Column.numeric("x", [None]).std())


class TestEquality:
    def test_equals_with_nan(self):
        a = Column.numeric("x", [1.0, None])
        b = Column.numeric("x", [1.0, None])
        assert a.equals(b)

    def test_not_equals_different_kind(self):
        a = Column.numeric("x", [1.0])
        b = Column.categorical("x", ["1.0"])
        assert not a.equals(b)

    def test_not_equals_different_values(self):
        a = Column.categorical("x", ["a"])
        b = Column.categorical("x", ["b"])
        assert not a.equals(b)


class TestConcat:
    def test_concat_numeric(self):
        a = Column.numeric("x", [1.0])
        b = Column.numeric("x", [2.0, None])
        merged = concat_columns([a, b])
        assert len(merged) == 3
        assert np.isnan(merged.values[2])

    def test_concat_categorical_keeps_object_dtype(self):
        a = Column.categorical("x", ["p"])
        b = Column.categorical("x", [None])
        merged = concat_columns([a, b])
        assert merged.values.dtype == object
        assert merged.values[1] is None

    def test_concat_kind_mismatch_raises(self):
        with pytest.raises(ValueError, match="cannot concat kinds"):
            concat_columns(
                [Column.numeric("x", [1.0]), Column.categorical("x", ["a"])]
            )

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat_columns([])

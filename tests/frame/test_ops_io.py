"""Unit tests for repro.frame.ops and repro.frame.io."""

import numpy as np
import pytest

from repro.frame import (
    CATEGORICAL,
    DataFrame,
    MISSING_LABEL,
    correlation_matrix,
    crosstab,
    describe,
    group_missing_rates,
    groupby_aggregate,
    read_csv,
    value_counts,
    write_csv,
)


@pytest.fixture
def frame():
    return DataFrame.from_dict(
        {
            "race": ["white", "white", "nonwhite", "nonwhite", "white"],
            "country": ["US", None, None, None, "US"],
            "income": [10.0, 20.0, 30.0, None, 50.0],
        }
    )


class TestValueCounts:
    def test_counts(self, frame):
        assert value_counts(frame, "race") == {"white": 3, "nonwhite": 2}

    def test_normalized(self, frame):
        counts = value_counts(frame, "race", normalize=True)
        assert counts["white"] == pytest.approx(0.6)

    def test_include_missing(self, frame):
        counts = value_counts(frame, "country", include_missing=True)
        assert counts[MISSING_LABEL] == 3


class TestCrosstab:
    def test_counts_and_missing_bucket(self, frame):
        table = crosstab(frame, "race", "country")
        assert table["white"]["US"] == 2
        assert table["nonwhite"][MISSING_LABEL] == 2

    def test_total_preserved(self, frame):
        table = crosstab(frame, "race", "country")
        total = sum(sum(inner.values()) for inner in table.values())
        assert total == frame.num_rows


class TestGroupby:
    def test_groupby_mean(self, frame):
        means = groupby_aggregate(frame, "race", "income", lambda a: float(np.mean(a)))
        assert means["white"] == pytest.approx((10 + 20 + 50) / 3)
        assert means["nonwhite"] == pytest.approx(30.0)

    def test_group_missing_rates_reproduces_disparity(self, frame):
        rates = group_missing_rates(frame, "race", "country")
        assert rates["nonwhite"] == 1.0
        assert rates["white"] == pytest.approx(1 / 3)


class TestDescribe:
    def test_numeric_summary(self, frame):
        info = describe(frame)["income"]
        assert info["kind"] == "numeric"
        assert info["count"] == 4
        assert info["missing"] == 1
        assert info["min"] == 10.0

    def test_categorical_summary(self, frame):
        info = describe(frame)["race"]
        assert info["mode"] == "white"
        assert info["distinct"] == 2

    def test_column_restriction(self, frame):
        assert set(describe(frame, ["race"]).keys()) == {"race"}


class TestCorrelation:
    def test_perfectly_correlated(self):
        frame = DataFrame.from_dict({"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0]})
        names, matrix = correlation_matrix(frame)
        assert names == ["a", "b"]
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_pairwise_complete_handling(self):
        frame = DataFrame.from_dict(
            {"a": [1.0, 2.0, 3.0, None], "b": [2.0, 4.0, 6.0, 100.0]}
        )
        _, matrix = correlation_matrix(frame)
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_zero_variance_is_nan(self):
        frame = DataFrame.from_dict({"a": [1.0, 1.0], "b": [2.0, 3.0]})
        _, matrix = correlation_matrix(frame)
        assert np.isnan(matrix[0, 1])


class TestCsvRoundTrip:
    def test_roundtrip_preserves_frame(self, frame, tmp_path):
        path = str(tmp_path / "data.csv")
        write_csv(frame, path)
        loaded = read_csv(path)
        assert loaded.equals(frame)

    def test_missing_values_roundtrip(self, frame, tmp_path):
        path = str(tmp_path / "data.csv")
        write_csv(frame, path)
        loaded = read_csv(path)
        assert loaded["country"][1] is None
        assert np.isnan(loaded["income"][3])

    def test_kind_override_on_read(self, tmp_path):
        path = str(tmp_path / "codes.csv")
        frame = DataFrame.from_dict({"code": ["1", "2"]}, kinds={"code": CATEGORICAL})
        write_csv(frame, path)
        loaded = read_csv(path, kinds={"code": CATEGORICAL})
        assert loaded.col("code").is_categorical

    def test_numeric_columns_hint(self, tmp_path):
        path = str(tmp_path / "data.csv")
        write_csv(DataFrame.from_dict({"x": [1.0, 2.0]}), path)
        loaded = read_csv(path, numeric_columns=["x"])
        assert loaded.col("x").is_numeric

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty CSV"):
            read_csv(str(path))

    def test_header_only_raises(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_csv(str(path))

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="fields"):
            read_csv(str(path))

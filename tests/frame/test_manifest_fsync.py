"""Frame-store manifests must be fsynced before the publishing rename.

Regression test: ``FrameStoreWriter.close`` used to ``os.replace`` the
manifest ``.tmp`` without an fsync (unlike the results store and the
run-manifest writer), so a crash between kernel buffering and writeback
could publish a truncated manifest under the final name.
"""

import json
import os

import numpy as np

from repro.frame import Column, DataFrame, FrameStoreWriter
from repro.frame.storage import MANIFEST_NAME


def small_frame(n=64):
    rng = np.random.default_rng(7)
    return DataFrame([
        Column.numeric("x", rng.normal(size=n)),
        Column.categorical("g", ["a" if i % 2 else "b" for i in range(n)]),
    ])


def test_manifest_fsynced_before_replace(tmp_path, monkeypatch):
    events = []
    real_fsync, real_replace = os.fsync, os.replace

    def spy_fsync(fd):
        events.append(("fsync", fd))
        return real_fsync(fd)

    def spy_replace(src, dst):
        events.append(("replace", os.path.basename(dst)))
        return real_replace(src, dst)

    monkeypatch.setattr(os, "fsync", spy_fsync)
    monkeypatch.setattr(os, "replace", spy_replace)

    frame = small_frame()
    root = str(tmp_path / "store")
    writer = FrameStoreWriter(root)
    writer.append(frame)
    store = writer.close()
    assert store.n_rows == frame.num_rows

    manifest_events = [
        e for e in events if e[0] == "replace" and e[1] == MANIFEST_NAME
    ]
    assert manifest_events, "manifest was never published via os.replace"
    replace_at = events.index(manifest_events[0])
    assert any(
        event[0] == "fsync" for event in events[:replace_at]
    ), "manifest .tmp must be fsynced before os.replace publishes it"

    manifest = json.load(open(os.path.join(root, MANIFEST_NAME)))
    assert manifest["n_rows"] == frame.num_rows
    assert not os.path.exists(os.path.join(root, MANIFEST_NAME + ".tmp"))

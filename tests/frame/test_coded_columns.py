"""Round-trip and invariant tests for dictionary-encoded categorical columns.

The coded storage (int32 codes + sorted category table, -1 = missing) must
be observationally identical to the object-array representation it
replaced: any pipeline of take/mask/concat/fill/CSV operations has to
decode back to exactly the values the object arrays would have held.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import (
    CATEGORICAL,
    Column,
    DataFrame,
    concat_columns,
    concat_rows,
    read_csv,
    write_csv,
)

categorical_values = st.lists(
    st.one_of(st.sampled_from(["a", "b", "c", "<missing>", "x,y"]), st.none()),
    min_size=1,
    max_size=50,
)
numeric_values = st.lists(
    st.one_of(st.floats(-1e6, 1e6), st.none()), min_size=1, max_size=50
)


def decoded(column):
    return list(column.values)


class TestStorageInvariants:
    def test_codes_dtype_and_missing_sentinel(self):
        col = Column.categorical("x", ["b", None, "a", "b"])
        assert col.codes.dtype == np.int32
        assert list(col.codes) == [1, -1, 0, 1]

    def test_category_table_sorted_unique(self):
        col = Column.categorical("x", ["z", "m", "z", "a"])
        assert list(col.categories) == ["a", "m", "z"]

    def test_values_view_is_cached_and_decodes_missing_to_none(self):
        col = Column.categorical("x", ["a", None])
        assert col.values is col.values  # lazy decode happens once
        assert col.values[1] is None

    def test_decoded_returns_fresh_copy(self):
        col = Column.categorical("x", ["a", "b"])
        owned = col.decoded()
        owned[0] = "mutated"
        assert col.values[0] == "a"

    def test_numeric_columns_reject_code_accessors(self):
        col = Column.numeric("x", [1.0])
        with pytest.raises(TypeError):
            col.codes
        with pytest.raises(TypeError):
            col.categories


class TestFromCodes:
    def test_round_trips_codes(self):
        col = Column.from_codes("x", [0, -1, 1], ["low", "high"])
        # table gets canonicalized to sorted order with codes remapped
        assert decoded(col) == ["low", None, "high"]

    def test_unsorted_categories_are_canonicalized(self):
        col = Column.from_codes("x", [0, 1], ["z", "a"])
        assert list(col.categories) == ["a", "z"]
        assert decoded(col) == ["z", "a"]

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValueError, match="codes outside"):
            Column.from_codes("x", [2], ["only"])
        with pytest.raises(ValueError, match="codes outside"):
            Column.from_codes("x", [-2], ["only"])


class TestPropertyRoundTrips:
    @given(values=categorical_values)
    @settings(max_examples=60)
    def test_construct_decode_identity(self, values):
        assert decoded(Column.categorical("x", values)) == values

    @given(values=categorical_values, data=st.data())
    @settings(max_examples=60)
    def test_take_matches_object_semantics(self, values, data):
        indices = data.draw(
            st.lists(
                st.integers(0, len(values) - 1), min_size=0, max_size=len(values)
            )
        )
        col = Column.categorical("x", values).take(np.asarray(indices, dtype=int))
        assert decoded(col) == [values[i] for i in indices]

    @given(values=categorical_values, data=st.data())
    @settings(max_examples=60)
    def test_mask_matches_object_semantics(self, values, data):
        mask = data.draw(
            st.lists(st.booleans(), min_size=len(values), max_size=len(values))
        )
        col = Column.categorical("x", values).mask(np.asarray(mask))
        assert decoded(col) == [v for v, keep in zip(values, mask) if keep]

    @given(left=categorical_values, right=categorical_values)
    @settings(max_examples=60)
    def test_concat_matches_object_semantics(self, left, right):
        merged = concat_columns(
            [Column.categorical("x", left), Column.categorical("x", right)]
        )
        assert decoded(merged) == left + right

    @given(values=categorical_values)
    @settings(max_examples=60)
    def test_fill_missing_then_decode(self, values):
        col = Column.categorical("x", values).fill_missing("zz-fill")
        assert decoded(col) == [v if v is not None else "zz-fill" for v in values]

    @given(values=categorical_values, numbers=numeric_values)
    @settings(max_examples=40)
    def test_csv_round_trip_preserves_frame(self, tmp_path_factory, values, numbers):
        frame = DataFrame(
            [
                Column.categorical("cat", values),
                Column.numeric("num", (numbers * len(values))[: len(values)]),
            ]
        )
        path = os.path.join(str(tmp_path_factory.mktemp("csv")), "frame.csv")
        write_csv(frame, path)
        back = read_csv(path, kinds=frame.kinds())
        assert back.equals(frame)

    @given(values=categorical_values)
    @settings(max_examples=40)
    def test_pipeline_take_mask_concat_csv_decode(self, tmp_path_factory, values):
        """The issue's full chain: construct → take/mask/concat → CSV → decode."""
        col = Column.categorical("cat", values)
        ids = Column.numeric("id", list(range(len(values))))
        order = np.arange(len(col))[::-1]
        frame = DataFrame([col, ids]).take(order)
        frame = frame.mask(np.ones(len(col), dtype=bool))
        doubled = concat_rows([frame, frame])
        path = os.path.join(str(tmp_path_factory.mktemp("csv")), "pipeline.csv")
        write_csv(doubled, path)
        back = read_csv(path, kinds=doubled.kinds())
        expected = list(reversed(values)) * 2
        assert list(back.col("cat").values) == expected
        assert back.equals(doubled)


class TestQuotedCsvFallback:
    def test_values_with_commas_and_quotes_round_trip(self, tmp_path):
        frame = DataFrame(
            [
                Column.categorical("tricky", ['a,"b"', "plain", None, "line\nbreak"]),
                Column.numeric("n", [1.5, np.nan, -3.0, 2.0]),
            ]
        )
        path = str(tmp_path / "quoted.csv")
        write_csv(frame, path)
        back = read_csv(path, kinds=frame.kinds())
        assert back.equals(frame)

    def test_single_column_missing_rows_round_trip(self, tmp_path):
        frame = DataFrame([Column.categorical("y", ["a", None, "b"])])
        path = str(tmp_path / "single.csv")
        write_csv(frame, path)
        back = read_csv(path, kinds=frame.kinds())
        assert back.num_rows == 3
        assert back.equals(frame)

    def test_single_column_nan_rows_round_trip(self, tmp_path):
        frame = DataFrame([Column.numeric("x", [1.0, None, 2.0])])
        path = str(tmp_path / "single_nan.csv")
        write_csv(frame, path)
        back = read_csv(path, kinds=frame.kinds())
        assert back.num_rows == 3
        assert back.equals(frame)

    def test_negative_zero_keeps_sign_through_csv(self, tmp_path):
        frame = DataFrame([Column.numeric("x", [-0.0, 5.0]), Column.numeric("y", [1.0, 2.0])])
        path = str(tmp_path / "negzero.csv")
        write_csv(frame, path)
        back = read_csv(path, kinds=frame.kinds())
        assert bool(np.signbit(back.col("x").values[0]))

    def test_quoted_fallback_keeps_lf_line_endings(self, tmp_path):
        frame = DataFrame(
            [
                Column.categorical("tricky", ["a,b", "c"]),
                Column.categorical("plain", ["p", "q"]),
            ]
        )
        path = str(tmp_path / "quoted_lf.csv")
        write_csv(frame, path)
        with open(path, newline="") as handle:
            assert "\r" not in handle.read()

    def test_compensating_ragged_rows_are_rejected(self, tmp_path):
        path = str(tmp_path / "ragged.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n1,2,3\n4\n")  # field counts cancel out in total
        with pytest.raises(ValueError, match="row 2 has 3 fields"):
            read_csv(path)

    def test_malformed_row_reports_position(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="row 3"):
            read_csv(path)


class TestVectorizedComparisons:
    def test_eq_on_categorical(self):
        col = Column.categorical("x", ["a", "b", None, "a"])
        assert list(col.eq("a")) == [True, False, False, True]
        assert list(col.eq("zzz")) == [False, False, False, False]

    def test_isin_on_categorical(self):
        col = Column.categorical("x", ["a", "b", "c", None])
        assert list(col.isin(["a", "c", "nope"])) == [True, False, True, False]

    def test_eq_on_numeric(self):
        col = Column.numeric("x", [1.0, 2.0, None])
        assert list(col.eq(2)) == [False, True, False]

    def test_eq_numeric_unparseable_is_all_false(self):
        col = Column.numeric("x", [1.0, 2.0])
        assert list(col.eq("not-a-number")) == [False, False]


class TestSetWhere:
    def test_replacement_adds_new_categories(self):
        col = Column.categorical("x", ["a", "b", "a"])
        out = col.set_where(np.asarray([True, False, True]), ["z1", "z2"])
        assert decoded(out) == ["z1", "b", "z2"]
        assert list(out.categories) == ["a", "b", "z1", "z2"]

    def test_replacement_with_missing(self):
        col = Column.categorical("x", ["a", "b"])
        out = col.set_where(np.asarray([True, False]), [None])
        assert decoded(out) == [None, "b"]

"""Histogram splitter: node-for-node identity below bin degeneracy.

The histogram backend promises *exactness* in the regime where binning
loses nothing: every feature has at most 256 distinct values and sample
weights are unit. There the bins are the distinct values, the per-bin
class counts are the same exact integers the presort backend cumsums in
sorted order, and the resulting trees must match node for node — the
same promise the presort backend makes against the seed implementation,
extended one more hop. These tests pin that with a hypothesis property
suite and with golden ``presort="auto"`` runs on all four paper
datasets; outside the regime they pin determinism and sane structure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn import (
    DecisionTreeClassifier,
    HistogramBinning,
    HistogramSplitter,
    Presort,
)
from repro.learn.tree import HISTOGRAM_AUTO_THRESHOLD, presort_hint
from repro.learn.splitter import PresortSplitter

from .reference_impl import ReferenceDecisionTree
from .test_splitter_golden import DATASETS, featurized, tree_signature


def fit_pair(X, y, sample_weight=None, **params):
    exact = DecisionTreeClassifier(**params).fit(
        X, y, sample_weight=sample_weight, presort="exact"
    )
    histogram = DecisionTreeClassifier(**params).fit(
        X, y, sample_weight=sample_weight, presort="histogram"
    )
    return exact, histogram


# ----------------------------------------------------------------------
# hypothesis property: identity below the bin-degeneracy regime
# ----------------------------------------------------------------------
matrix_strategy = st.builds(
    lambda rows, cardinalities, seed: (
        np.random.default_rng(seed)
        .integers(0, cardinalities, size=(rows, len(cardinalities)))
        .astype(np.float64),
        seed,
    ),
    rows=st.integers(min_value=2, max_value=120),
    cardinalities=st.lists(
        st.integers(min_value=1, max_value=40), min_size=1, max_size=6
    ),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestHypothesisIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        data=matrix_strategy,
        criterion=st.sampled_from(["gini", "entropy"]),
        min_leaf=st.integers(min_value=1, max_value=5),
        n_classes=st.integers(min_value=2, max_value=4),
    )
    def test_histogram_equals_presort(self, data, criterion, min_leaf, n_classes):
        X, seed = data
        y = np.random.default_rng(seed + 1).integers(0, n_classes, len(X))
        exact, histogram = fit_pair(
            X, y, criterion=criterion, min_samples_leaf=min_leaf
        )
        assert tree_signature(exact) == tree_signature(histogram)

    @settings(max_examples=25, deadline=None)
    @given(data=matrix_strategy, depth=st.integers(min_value=1, max_value=6))
    def test_identity_survives_depth_limits(self, data, depth):
        X, seed = data
        y = np.random.default_rng(seed + 2).integers(0, 2, len(X))
        exact, histogram = fit_pair(X, y, max_depth=depth)
        assert tree_signature(exact) == tree_signature(histogram)

    @settings(max_examples=25, deadline=None)
    @given(data=matrix_strategy)
    def test_negative_and_fractional_values(self, data):
        # distinct-value bins are about cardinality, not integrality
        X, seed = data
        X = (X - 3.0) * 0.37
        y = np.random.default_rng(seed + 3).integers(0, 2, len(X))
        exact, histogram = fit_pair(X, y)
        assert tree_signature(exact) == tree_signature(histogram)


# ----------------------------------------------------------------------
# golden: presort="auto" on the paper datasets is byte-identical to seed
# ----------------------------------------------------------------------
class TestGoldenAuto:
    @pytest.mark.parametrize("dataset,n_rows", DATASETS)
    def test_auto_matches_seed_trees(self, dataset, n_rows):
        X, y, weights = featurized(dataset, n_rows)
        assert len(X) < HISTOGRAM_AUTO_THRESHOLD  # paper scale stays exact
        for params in (
            {},
            {"criterion": "entropy", "max_depth": 10, "min_samples_leaf": 10},
        ):
            auto = DecisionTreeClassifier(**params).fit(
                X, y, sample_weight=weights, presort="auto"
            )
            seed = ReferenceDecisionTree(**params).fit(X, y, sample_weight=weights)
            assert tree_signature(auto) == tree_signature(seed)

    @pytest.mark.parametrize("dataset,n_rows", [("propublica", 600), ("ricci", None)])
    def test_histogram_matches_seed_trees_in_regime(self, dataset, n_rows):
        # stronger than the auto guarantee: these two featurized matrices
        # have <= 256 distinct values per feature, so even *forcing* the
        # histogram backend reproduces the seed (adult/germancredit carry
        # near-continuous numerics and rely on the auto fallback instead)
        X, y, weights = featurized(dataset, n_rows)
        assert max(len(np.unique(X[:, j])) for j in range(X.shape[1])) <= 256
        model = DecisionTreeClassifier(max_depth=10).fit(
            X, y, sample_weight=weights, presort="histogram"
        )
        seed = ReferenceDecisionTree(max_depth=10).fit(X, y, sample_weight=weights)
        assert tree_signature(model) == tree_signature(seed)


# ----------------------------------------------------------------------
# dispatch, hints, and the sketch regime
# ----------------------------------------------------------------------
def small_problem(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = np.column_stack([
        rng.integers(0, 2, n).astype(float),
        rng.integers(0, 9, n).astype(float),
        rng.integers(0, 40, n).astype(float),
    ])
    y = rng.integers(0, 2, n)
    return X, y


class TestDispatch:
    def test_auto_picks_exact_below_threshold(self):
        X, y = small_problem()
        model = DecisionTreeClassifier()
        onehot = np.zeros((len(y), 2))
        onehot[np.arange(len(y)), y] = 1.0
        assert isinstance(
            model._make_splitter(X, onehot, "auto"), PresortSplitter
        )
        assert isinstance(
            model._make_splitter(X, onehot, None), PresortSplitter
        )

    def test_auto_picks_histogram_above_threshold(self, monkeypatch):
        monkeypatch.setattr("repro.learn.tree.HISTOGRAM_AUTO_THRESHOLD", 100)
        X, y = small_problem()
        model = DecisionTreeClassifier()
        onehot = np.zeros((len(y), 2))
        onehot[np.arange(len(y)), y] = 1.0
        assert isinstance(
            model._make_splitter(X, onehot, "auto"), HistogramSplitter
        )

    def test_hint_objects_select_their_backend(self):
        X, y = small_problem()
        model = DecisionTreeClassifier()
        onehot = np.zeros((len(y), 2))
        onehot[np.arange(len(y)), y] = 1.0
        exact = model._make_splitter(X, onehot, Presort(X))
        assert isinstance(exact, PresortSplitter)
        binning = HistogramBinning(X)
        histogram = model._make_splitter(X, onehot, binning)
        assert isinstance(histogram, HistogramSplitter)
        assert histogram._binning is binning

    def test_stale_binning_hint_degrades_to_fresh_binning(self):
        X, y = small_problem()
        stale = HistogramBinning(np.ascontiguousarray(X[:100]))
        model = DecisionTreeClassifier(max_depth=4).fit(X, y, presort=stale)
        fresh = DecisionTreeClassifier(max_depth=4).fit(X, y, presort="histogram")
        assert tree_signature(model) == tree_signature(fresh)

    def test_invalid_presort_value_rejected(self):
        X, y = small_problem()
        with pytest.raises(ValueError, match="presort must be"):
            DecisionTreeClassifier().fit(X, y, presort="sometimes")

    def test_presort_hint_matches_auto_choice(self, monkeypatch):
        X, _ = small_problem()
        assert isinstance(presort_hint(X), Presort)
        monkeypatch.setattr("repro.learn.tree.HISTOGRAM_AUTO_THRESHOLD", 100)
        assert isinstance(presort_hint(X), HistogramBinning)

    def test_fit_candidates_accepts_histogram_backend(self):
        X, y = small_problem()
        template = DecisionTreeClassifier()
        candidates = [{"max_depth": 2}, {"max_depth": 5}]
        family = template.fit_candidates(candidates, X, y, presort="histogram")
        for params, model in zip(candidates, family):
            solo = DecisionTreeClassifier(**params).fit(X, y, presort="histogram")
            assert tree_signature(model) == tree_signature(solo)


class TestSketchRegime:
    def test_binning_caps_at_256_bins(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(4000, 3))
        binning = HistogramBinning(X)
        assert binning.codes.dtype == np.uint8
        assert int(binning.n_bins.max()) <= 256
        # every row's code is consistent with its bin's bounds
        for j in range(3):
            codes = binning.codes[j]
            assert np.all(X[:, j] <= binning.upper[j][codes])
            assert np.all(X[:, j] >= binning.lower[j][codes])

    def test_dense_features_fit_deterministically(self):
        rng = np.random.default_rng(6)
        X = np.column_stack([rng.normal(size=3000), rng.uniform(size=3000)])
        y = (X[:, 0] + rng.normal(scale=0.3, size=3000) > 0).astype(int)
        a = DecisionTreeClassifier(max_depth=6).fit(X, y, presort="histogram")
        b = DecisionTreeClassifier(max_depth=6).fit(X, y, presort="histogram")
        assert tree_signature(a) == tree_signature(b)
        # the sketch loses thresholds, not signal: both backends separate
        exact = DecisionTreeClassifier(max_depth=6).fit(X, y, presort="exact")
        agree = np.mean(a.predict(X) == exact.predict(X))
        assert agree > 0.9

    def test_weighted_fit_runs_outside_identity_regime(self):
        X, y = small_problem(600, seed=9)
        weights = np.random.default_rng(9).uniform(0.5, 2.0, len(y))
        model = DecisionTreeClassifier(max_depth=6).fit(
            X, y, sample_weight=weights, presort="histogram"
        )
        assert model.depth_ <= 6
        # node sample counts are real row counts, independent of weights
        assert model.tree_.n_samples == len(y)

    def test_multiclass_weighted_histogram(self):
        rng = np.random.default_rng(11)
        X = rng.integers(0, 20, size=(500, 4)).astype(float)
        y = rng.integers(0, 3, 500)
        weights = rng.uniform(0.1, 3.0, 500)
        model = DecisionTreeClassifier(max_depth=5).fit(
            X, y, sample_weight=weights, presort="histogram"
        )
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestSubtractionTrick:
    def test_partition_matches_direct_accumulation(self):
        X, y = small_problem(800, seed=13)
        onehot = np.zeros((len(y), 2))
        onehot[np.arange(len(y)), y] = 1.0
        splitter = HistogramSplitter(X, onehot, "gini", 1)
        root = splitter.root_context()
        indices = np.arange(len(y))
        left = indices[X[:, 1] <= 4.0]
        right = indices[X[:, 1] > 4.0]
        left_ctx, right_ctx = splitter.partition(root, left, right)
        for derived, direct in zip(right_ctx, splitter._accumulate(right)):
            if derived is None:
                assert direct is None
            else:
                np.testing.assert_array_equal(derived, direct)
        for derived, direct in zip(left_ctx, splitter._accumulate(left)):
            if derived is None:
                assert direct is None
            else:
                np.testing.assert_array_equal(derived, direct)

"""Golden tests: the presorted splitter reproduces the seed tree exactly.

The presort backend promises *structural identity* — the same feature /
threshold / gain sequence, node for node — with the per-node argsort
implementation it replaced. These tests hold it to that across the four
benchmark datasets' tuning grids, sample weighting, multi-class labels,
the fit-context hint, and the grid-search family fit.
"""

import sys

import numpy as np
import pytest

from repro.core.featurization import Featurizer
from repro.core.missing_values import ModeImputer
from repro.datasets import load_dataset
from repro.learn import (
    DecisionTreeClassifier,
    GridSearchCV,
    KFold,
    Presort,
    accuracy_score,
    clone,
)
from repro.learn.model_selection import ParameterGrid

from .reference_impl import ReferenceDecisionTree

# the paper's tree grid, thinned to keep the slow reference fits tractable
TUNING_GRID = {
    "criterion": ["gini", "entropy"],
    "max_depth": [3, 10],
    "min_samples_leaf": [1, 10],
    "min_samples_split": [2, 20],
}

DATASETS = [("adult", 700), ("germancredit", 600), ("propublica", 600), ("ricci", None)]


def featurized(name, n):
    frame, spec = load_dataset(name, n=n, seed=0)
    columns = list(spec.numeric_features) + list(spec.categorical_features)
    frame = ModeImputer().fit(frame, columns, 0).handle_missing(frame)
    data = Featurizer(spec).fit(frame).transform(frame)
    return data.features, data.labels, data.instance_weights


def tree_signature(model):
    """Every node's (feature, threshold, size, distribution), preorder."""
    nodes = []
    stack = [model.tree_]
    while stack:
        node = stack.pop()
        nodes.append(
            (node.feature, node.threshold, node.n_samples, node.distribution.tobytes())
        )
        if not node.is_leaf:
            stack.append(node.right)
            stack.append(node.left)
    return nodes


def assert_same_tree(model, reference):
    assert tree_signature(model) == tree_signature(reference)


class TestNodeForNodeIdentity:
    @pytest.mark.parametrize("dataset,n_rows", DATASETS)
    def test_tuning_grid_trees_match_seed(self, dataset, n_rows):
        X, y, weights = featurized(dataset, n_rows)
        for params in ParameterGrid(TUNING_GRID):
            fast = DecisionTreeClassifier(**params).fit(X, y, sample_weight=weights)
            slow = ReferenceDecisionTree(**params).fit(X, y, sample_weight=weights)
            assert_same_tree(fast, slow)

    def test_arbitrary_sample_weights(self):
        X, y, _ = featurized("germancredit", 400)
        weights = np.random.default_rng(7).random(len(y)) * 3.0
        for criterion in ("gini", "entropy"):
            fast = DecisionTreeClassifier(criterion=criterion, max_depth=8).fit(
                X, y, sample_weight=weights
            )
            slow = ReferenceDecisionTree(criterion=criterion, max_depth=8).fit(
                X, y, sample_weight=weights
            )
            assert_same_tree(fast, slow)

    def test_multiclass_general_criterion_path(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(400, 6))
        y = rng.integers(0, 5, 400)
        for params in (
            dict(criterion="gini", max_depth=6),
            dict(criterion="entropy", max_depth=None, min_samples_leaf=4),
        ):
            assert_same_tree(
                DecisionTreeClassifier(**params).fit(X, y),
                ReferenceDecisionTree(**params).fit(X, y),
            )

    def test_tied_gains_break_identically(self):
        # symmetric one-hot features produce exactly equal gains; the
        # winner must match the seed's argmax order
        X = np.asarray(
            [[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]] * 6
        )
        y = np.asarray([0, 1] * 12)
        assert_same_tree(
            DecisionTreeClassifier().fit(X, y), ReferenceDecisionTree().fit(X, y)
        )


class TestPresortHint:
    def test_hint_does_not_change_the_tree(self):
        X, y, _ = featurized("germancredit", 500)
        hinted = DecisionTreeClassifier(criterion="entropy", max_depth=10).fit(
            X, y, presort=Presort(X)
        )
        plain = DecisionTreeClassifier(criterion="entropy", max_depth=10).fit(X, y)
        assert_same_tree(hinted, plain)

    def test_one_presort_serves_many_candidates(self):
        X, y, _ = featurized("germancredit", 500)
        shared = Presort(X)
        for params in (dict(max_depth=3), dict(max_depth=8), dict(criterion="entropy")):
            hinted = DecisionTreeClassifier(**params).fit(X, y, presort=shared)
            plain = DecisionTreeClassifier(**params).fit(X, y)
            assert_same_tree(hinted, plain)

    def test_stale_hint_for_other_matrix_is_ignored(self):
        X, y, _ = featurized("germancredit", 500)
        other = Presort(np.ascontiguousarray(X[:250]))
        model = DecisionTreeClassifier(max_depth=6).fit(X, y, presort=other)
        assert_same_tree(model, DecisionTreeClassifier(max_depth=6).fit(X, y))

    def test_presort_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="2-D"):
            Presort(np.zeros(5))


class TestFitCandidates:
    def test_family_fit_equals_individual_fits(self):
        X, y, _ = featurized("germancredit", 500)
        candidates = list(ParameterGrid(TUNING_GRID))
        family = DecisionTreeClassifier().fit_candidates(candidates, X, y)
        for params, model in zip(candidates, family):
            assert model.get_params()["max_depth"] == params["max_depth"]
            assert_same_tree(model, DecisionTreeClassifier(**params).fit(X, y))
            individual = DecisionTreeClassifier(**params).fit(X, y)
            assert model.depth_ == individual.depth_
            assert model.n_leaves_ == individual.n_leaves_

    def test_family_fit_with_unbounded_depth(self):
        X, y, _ = featurized("ricci", None)
        candidates = [
            {"max_depth": 2, "min_samples_leaf": 1},
            {"max_depth": None, "min_samples_leaf": 1},
            {"max_depth": 4, "min_samples_leaf": 1},
        ]
        family = DecisionTreeClassifier().fit_candidates(candidates, X, y)
        for params, model in zip(candidates, family):
            assert_same_tree(model, DecisionTreeClassifier(**params).fit(X, y))


class TestGridSearchIdentity:
    """The fold-major, presort-sharing, family-fitting search must score
    exactly like the seed's candidate-major loop."""

    def seed_results(self, make_model, grid, X, y, cv, random_state, sample_weight=None):
        candidates = list(ParameterGrid(grid))
        folds = list(KFold(cv, shuffle=True, random_state=random_state).split(len(y)))
        results = []
        for params in candidates:
            fold_scores = []
            for train_idx, valid_idx in folds:
                model = make_model().set_params(**params)
                kwargs = {}
                if sample_weight is not None:
                    kwargs["sample_weight"] = np.asarray(sample_weight)[train_idx]
                model.fit(X[train_idx], y[train_idx], **kwargs)
                fold_scores.append(
                    accuracy_score(y[valid_idx], model.predict(X[valid_idx]))
                )
            fold_scores = np.asarray(fold_scores, dtype=np.float64)
            results.append(
                {
                    "params": params,
                    "mean_score": float(np.nanmean(fold_scores)),
                    "std_score": float(np.nanstd(fold_scores)),
                    "fold_scores": fold_scores.tolist(),
                }
            )
        return results

    def test_cv_results_byte_identical_to_seed_loop(self):
        X, y, _ = featurized("germancredit", 500)
        grid = {"criterion": ["gini", "entropy"], "max_depth": [3, 5, 10]}
        search = GridSearchCV(DecisionTreeClassifier(), grid, cv=4, random_state=11)
        search.fit(X, y)
        assert search.cv_results_ == self.seed_results(
            ReferenceDecisionTree, grid, X, y, 4, 11
        )

    def test_weighted_cv_results_byte_identical(self):
        X, y, weights = featurized("adult", 500)
        grid = {"criterion": ["gini", "entropy"], "max_depth": [3, 10]}
        search = GridSearchCV(DecisionTreeClassifier(), grid, cv=3, random_state=2)
        search.fit(X, y, sample_weight=weights)
        assert search.cv_results_ == self.seed_results(
            ReferenceDecisionTree, grid, X, y, 3, 2, sample_weight=weights
        )

    def test_n_jobs_matches_serial(self):
        X, y, _ = featurized("germancredit", 400)
        grid = {"criterion": ["gini", "entropy"], "max_depth": [3, 8]}
        serial = GridSearchCV(DecisionTreeClassifier(), grid, cv=3, random_state=0)
        fanned = GridSearchCV(
            DecisionTreeClassifier(), grid, cv=3, random_state=0, n_jobs=3
        )
        assert serial.fit(X, y).cv_results_ == fanned.fit(X, y).cv_results_
        assert serial.best_params_ == fanned.best_params_

    def test_n_jobs_exceeding_folds_splits_candidates(self):
        X, y, _ = featurized("ricci", None)
        grid = {"max_depth": [2, 3, 4, 5]}
        serial = GridSearchCV(DecisionTreeClassifier(), grid, cv=2, random_state=0)
        fanned = GridSearchCV(
            DecisionTreeClassifier(), grid, cv=2, random_state=0, n_jobs=4
        )
        assert serial.fit(X, y).cv_results_ == fanned.fit(X, y).cv_results_


class TestDeepTrees:
    def test_chain_tree_deeper_than_recursion_limit(self):
        # alternating labels over a sorted unique feature peel one leaf
        # per level: a comb far deeper than the interpreter stack allows
        n = 3 * sys.getrecursionlimit()
        X = np.arange(n, dtype=np.float64).reshape(-1, 1)
        y = np.arange(n) % 2
        model = DecisionTreeClassifier(max_depth=None).fit(X, y)
        assert model.depth_ == n - 1
        assert model.n_leaves_ == n
        assert model.score(X, y) == 1.0

    def test_clone_roundtrip_keeps_hyperparameters(self):
        model = DecisionTreeClassifier(criterion="entropy", max_depth=7)
        assert clone(model).get_params() == model.get_params()

"""Unit tests for scalers and encoders."""

import numpy as np
import pytest

from repro.learn import (
    MISSING_CATEGORY,
    LabelEncoder,
    MinMaxScaler,
    NoOpScaler,
    OneHotEncoder,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_statistics_come_from_fit_data_only(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        out = scaler.transform(np.array([[4.0]]))
        assert out[0, 0] == pytest.approx((4.0 - 1.0) / 1.0)

    def test_constant_feature_not_divided_by_zero(self):
        Z = StandardScaler().fit_transform(np.array([[3.0], [3.0]]))
        assert np.allclose(Z, 0.0)

    def test_inverse_transform_roundtrip(self):
        X = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_width_mismatch_raises(self):
        scaler = StandardScaler().fit(np.ones((3, 2)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.ones((3, 3)))

    def test_without_mean(self):
        X = np.array([[1.0], [3.0]])
        Z = StandardScaler(with_mean=False).fit_transform(X)
        assert Z.min() > 0


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        X = np.array([[0.0], [5.0], [10.0]])
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == 0.0 and Z.max() == 1.0

    def test_custom_range(self):
        X = np.array([[0.0], [10.0]])
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert Z[0, 0] == -1.0 and Z[1, 0] == 1.0

    def test_out_of_range_transform_data_extrapolates(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == pytest.approx(2.0)

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError, match="feature_range"):
            MinMaxScaler(feature_range=(1.0, 0.0)).fit(np.ones((2, 1)))

    def test_inverse_roundtrip(self):
        X = np.array([[2.0], [4.0], [8.0]])
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_feature(self):
        Z = MinMaxScaler().fit_transform(np.array([[7.0], [7.0]]))
        assert np.isfinite(Z).all()


class TestNoOpScaler:
    def test_identity(self):
        X = np.array([[1.0, -5.0], [2.0, 99.0]])
        assert np.array_equal(NoOpScaler().fit_transform(X), X)

    def test_returns_copy(self):
        X = np.array([[1.0]])
        out = NoOpScaler().fit_transform(X)
        out[0, 0] = 5.0
        assert X[0, 0] == 1.0

    def test_width_check(self):
        scaler = NoOpScaler().fit(np.ones((2, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((2, 3)))


class TestOneHotEncoder:
    def test_basic_encoding(self):
        X = np.array([["a"], ["b"], ["a"]], dtype=object)
        out = OneHotEncoder().fit_transform(X)
        # two categories + one unseen slot
        assert out.shape == (3, 3)
        assert out[:, :2].sum() == 3.0

    def test_unseen_category_goes_to_reserved_dimension(self):
        encoder = OneHotEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        out = encoder.transform(np.array([["z"]], dtype=object))
        assert out[0, -1] == 1.0
        assert out[0, :-1].sum() == 0.0

    def test_output_width_stable_across_splits(self):
        encoder = OneHotEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        w1 = encoder.transform(np.array([["a"]], dtype=object)).shape[1]
        w2 = encoder.transform(np.array([["z"], ["b"]], dtype=object)).shape[1]
        assert w1 == w2

    def test_missing_becomes_category(self):
        X = np.array([["a"], [None]], dtype=object)
        encoder = OneHotEncoder(handle_missing="category").fit(X)
        assert MISSING_CATEGORY in encoder.categories_[0]

    def test_missing_error_mode(self):
        X = np.array([[None]], dtype=object)
        with pytest.raises(ValueError, match="missing value"):
            OneHotEncoder(handle_missing="error").fit(X)

    def test_invalid_handle_missing(self):
        with pytest.raises(ValueError):
            OneHotEncoder(handle_missing="nope")

    def test_multiple_features_concatenate(self):
        X = np.array([["a", "x"], ["b", "y"]], dtype=object)
        out = OneHotEncoder().fit_transform(X)
        assert out.shape == (2, 6)
        assert np.allclose(out.sum(axis=1), 2.0)

    def test_feature_names(self):
        X = np.array([["a", "x"], ["b", "x"]], dtype=object)
        encoder = OneHotEncoder().fit(X)
        names = encoder.feature_names(["f1", "f2"])
        assert "f1=a" in names and "f2=<unseen>" in names

    def test_feature_width_mismatch_raises(self):
        encoder = OneHotEncoder().fit(np.array([["a", "x"]], dtype=object))
        with pytest.raises(ValueError, match="features"):
            encoder.transform(np.array([["a"]], dtype=object))

    def test_accepts_list_of_column_arrays(self):
        cols = [np.array(["a", "b"], dtype=object)]
        out = OneHotEncoder().fit(cols).transform(cols)
        assert out.shape == (2, 3)


class TestLabelEncoder:
    def test_roundtrip(self):
        y = ["good", "bad", "good"]
        encoder = LabelEncoder().fit(y)
        codes = encoder.transform(y)
        assert list(encoder.inverse_transform(codes)) == y

    def test_classes_sorted(self):
        encoder = LabelEncoder().fit(["z", "a"])
        assert encoder.classes_ == ["a", "z"]

    def test_unseen_label_raises(self):
        encoder = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError, match="unseen"):
            encoder.transform(["b"])

    def test_out_of_range_codes_raise(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="range"):
            encoder.inverse_transform(np.array([5]))

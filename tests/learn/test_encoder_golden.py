"""Golden tests: coded-path encoders vs the object-array reference.

The dictionary-encoding refactor rewired OneHotEncoder / TargetEncoder /
FrequencyEncoder / LabelEncoder onto int32 codes. These tests pin the
pre-refactor per-value implementations as executable references and assert
the vectorized outputs are *bit-identical* (``np.array_equal``, no
tolerance) on data with missing values, unseen transform-time categories,
and non-string inputs.
"""

import numpy as np

from repro.frame import Column
from repro.learn import FrequencyEncoder, LabelEncoder, OneHotEncoder, TargetEncoder

MISSING = "<missing>"


def _reference_key(value):
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return MISSING
    return str(value)


def reference_onehot(fit_columns, transform_columns):
    """The seed implementation: per-feature dict index + per-row loop."""
    categories_ = []
    for values in fit_columns:
        resolved = [_reference_key(v) for v in values]
        categories_.append(sorted(set(resolved)))
    blocks = []
    for values, categories in zip(transform_columns, categories_):
        resolved = [_reference_key(v) for v in values]
        index = {c: i for i, c in enumerate(categories)}
        width = len(categories) + 1
        block = np.zeros((len(resolved), width), dtype=np.float64)
        for row, value in enumerate(resolved):
            block[row, index.get(value, width - 1)] = 1.0
        blocks.append(block)
    return categories_, np.hstack(blocks)


def reference_target(fit_columns, y, transform_columns, smoothing):
    """The seed implementation: per-value dict accumulation."""
    y = np.asarray(y, dtype=np.float64)
    global_rate = float(y.mean())
    tables = []
    for values in fit_columns:
        sums, counts = {}, {}
        for value, label in zip(values, y):
            key = _reference_key(value)
            sums[key] = sums.get(key, 0.0) + label
            counts[key] = counts.get(key, 0) + 1
        tables.append(
            {
                key: (sums[key] + smoothing * global_rate)
                / (counts[key] + smoothing)
                for key in sums
            }
        )
    blocks = []
    for values, table in zip(transform_columns, tables):
        blocks.append(
            np.asarray(
                [table.get(_reference_key(v), global_rate) for v in values],
                dtype=np.float64,
            ).reshape(-1, 1)
        )
    return np.hstack(blocks)


def reference_frequency(fit_columns, transform_columns):
    tables = []
    for values in fit_columns:
        keys = [_reference_key(v) for v in values]
        counts = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        tables.append({k: c / len(keys) for k, c in counts.items()})
    blocks = []
    for values, table in zip(transform_columns, tables):
        blocks.append(
            np.asarray(
                [table.get(_reference_key(v), 0.0) for v in values],
                dtype=np.float64,
            ).reshape(-1, 1)
        )
    return np.hstack(blocks)


def _sample_columns(rng, n, missing_rate=0.1):
    pools = [
        ["alpha", "beta", "gamma", "delta"],
        ["x", MISSING],  # literal "<missing>" string colliding with the bucket
        [str(v) for v in range(11)],  # high-ish cardinality, numeric strings
    ]
    columns = []
    for pool in pools:
        values = [pool[rng.integers(len(pool))] for _ in range(n)]
        for i in range(n):
            if rng.random() < missing_rate:
                values[i] = None
        arr = np.empty(n, dtype=object)
        arr[:] = values
        columns.append(arr)
    return columns


def _with_unseen(rng, columns):
    out = []
    for values in columns:
        values = values.copy()
        for i in range(len(values)):
            if rng.random() < 0.07:
                values[i] = "never-seen-at-fit"
        out.append(values)
    return out


class TestOneHotGolden:
    def test_bit_identical_to_reference(self):
        rng = np.random.default_rng(7)
        fit_cols = _sample_columns(rng, 400)
        transform_cols = _with_unseen(rng, _sample_columns(rng, 150))
        ref_categories, ref_out = reference_onehot(fit_cols, transform_cols)
        encoder = OneHotEncoder().fit(fit_cols)
        assert encoder.categories_ == ref_categories
        out = encoder.transform(transform_cols)
        assert np.array_equal(out, ref_out)

    def test_bit_identical_when_fed_coded_columns(self):
        rng = np.random.default_rng(11)
        fit_cols = _sample_columns(rng, 300)
        transform_cols = _with_unseen(rng, _sample_columns(rng, 120))
        _, ref_out = reference_onehot(fit_cols, transform_cols)
        encoder = OneHotEncoder().fit(
            [Column.categorical(f"c{i}", c) for i, c in enumerate(fit_cols)]
        )
        out = encoder.transform(
            [Column.categorical(f"c{i}", c) for i, c in enumerate(transform_cols)]
        )
        assert np.array_equal(out, ref_out)

    def test_numeric_column_input_stringifies_like_object_arrays(self):
        # a kind-inferred numeric column reaching a categorical encoder must
        # encode like the old float-array-through-str path, not crash
        numeric = Column.numeric("flag", [0.0, 1.0, None, 0.0])
        as_objects = [np.asarray([0.0, 1.0, None, 0.0], dtype=object)]
        ref_categories, ref_out = reference_onehot(as_objects, as_objects)
        encoder = OneHotEncoder().fit([numeric])
        assert encoder.categories_ == ref_categories
        assert np.array_equal(encoder.transform([numeric]), ref_out)

    def test_mixed_type_inputs_stringify_identically(self):
        fit = [np.asarray([1, 2.5, "2.5", None, True], dtype=object)]
        transform = [np.asarray([2.5, "1", None, False], dtype=object)]
        ref_categories, ref_out = reference_onehot(fit, transform)
        encoder = OneHotEncoder().fit(fit)
        assert encoder.categories_ == ref_categories
        assert np.array_equal(encoder.transform(transform), ref_out)


class TestTargetGolden:
    def test_bit_identical_to_reference(self):
        rng = np.random.default_rng(13)
        fit_cols = _sample_columns(rng, 500)
        transform_cols = _with_unseen(rng, _sample_columns(rng, 200))
        y = (rng.random(500) < 0.3).astype(np.float64)
        for smoothing in (0.0, 10.0):
            ref_out = reference_target(fit_cols, y, transform_cols, smoothing)
            encoder = TargetEncoder(smoothing=smoothing).fit(fit_cols, y=y)
            out = encoder.transform(transform_cols)
            assert np.array_equal(out, ref_out)


class TestFrequencyGolden:
    def test_bit_identical_to_reference(self):
        rng = np.random.default_rng(17)
        fit_cols = _sample_columns(rng, 500)
        transform_cols = _with_unseen(rng, _sample_columns(rng, 200))
        ref_out = reference_frequency(fit_cols, transform_cols)
        encoder = FrequencyEncoder().fit(fit_cols)
        assert np.array_equal(encoder.transform(transform_cols), ref_out)

    def test_literal_missing_string_merges_with_missing_bucket(self):
        fit = [np.asarray([MISSING, None, "a", None], dtype=object)]
        encoder = FrequencyEncoder().fit(fit)
        out = encoder.transform([np.asarray([None, MISSING, "a"], dtype=object)])
        # the literal string and real missing share one bucket of count 3
        assert out[0, 0] == 0.75
        assert out[1, 0] == 0.75
        assert out[2, 0] == 0.25


class TestLabelGolden:
    def test_bit_identical_to_reference(self):
        y_fit = ["good", "bad", "good", "bad", "good"]
        y_new = ["bad", "good", "bad"]
        # reference: sorted classes, dict-mapped codes
        classes = sorted(set(str(v) for v in y_fit))
        index = {c: i for i, c in enumerate(classes)}
        ref = np.asarray([index[str(v)] for v in y_new], dtype=np.int64)
        encoder = LabelEncoder().fit(y_fit)
        assert encoder.classes_ == classes
        out = encoder.transform(y_new)
        assert out.dtype == np.int64
        assert np.array_equal(out, ref)

"""Unit tests for Pipeline, GaussianNB, KNeighborsClassifier and SimpleImputer."""

import numpy as np
import pytest

from repro.learn import (
    GaussianNB,
    KNeighborsClassifier,
    Pipeline,
    SGDClassifier,
    SimpleImputer,
    StandardScaler,
    make_pipeline,
    nearest_neighbor_indices,
)


def _blobs(seed=0, n=200):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n // 2, 2))
    X1 = rng.normal(4.0, 1.0, size=(n // 2, 2))
    return np.vstack([X0, X1]), np.array([0] * (n // 2) + [1] * (n // 2))


class TestPipeline:
    def test_fit_predict(self):
        X, y = _blobs()
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("model", SGDClassifier(random_state=0)),
        ]).fit(X, y)
        assert pipe.score(X, y) > 0.95

    def test_transformers_fit_only_on_training_data(self):
        X_train = np.array([[0.0], [2.0]])
        y_train = np.array([0, 1])
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("model", SGDClassifier(random_state=0)),
        ]).fit(X_train, y_train)
        scaler = dict(pipe.steps)["scaler"]
        assert scaler.mean_[0] == 1.0  # mean of train only
        # predicting on new data does not refit the scaler
        pipe.predict(np.array([[100.0]]))
        assert scaler.mean_[0] == 1.0

    def test_param_routing_via_set_params(self):
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("model", SGDClassifier()),
        ])
        pipe.set_params(model__alpha=0.5)
        assert dict(pipe.steps)["model"].alpha == 0.5

    def test_bad_param_name(self):
        pipe = Pipeline([("model", SGDClassifier())])
        with pytest.raises(ValueError, match="step__param"):
            pipe.set_params(alpha=0.1)
        with pytest.raises(ValueError, match="unknown pipeline step"):
            pipe.set_params(nope__alpha=0.1)

    def test_duplicate_step_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline([("a", StandardScaler()), ("a", SGDClassifier())])

    def test_step_name_with_dunder_rejected(self):
        with pytest.raises(ValueError, match="__"):
            Pipeline([("a__b", StandardScaler())])

    def test_make_pipeline_names(self):
        pipe = make_pipeline(StandardScaler(), StandardScaler(), SGDClassifier())
        names = [n for n, _ in pipe.steps]
        assert names == ["standardscaler", "standardscaler2", "sgdclassifier"]

    def test_sample_weight_passthrough(self):
        X, y = _blobs(n=40)
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("model", SGDClassifier(random_state=0)),
        ])
        pipe.fit(X, y, sample_weight=np.ones(len(y)))
        assert pipe.predict(X).shape == y.shape


class TestGaussianNB:
    def test_learns_blobs(self):
        X, y = _blobs()
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_proba_normalized(self):
        X, y = _blobs()
        proba = GaussianNB().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_priors_follow_weights(self):
        X, y = _blobs(n=100)
        w = np.where(y == 1, 3.0, 1.0)
        model = GaussianNB().fit(X, y, sample_weight=w)
        assert model.class_prior_[1] == pytest.approx(0.75)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            GaussianNB().fit(np.ones((3, 1)), [1, 1, 1])

    def test_width_check(self):
        X, y = _blobs(n=20)
        model = GaussianNB().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((2, 9)))


class TestKNN:
    def test_learns_blobs(self):
        X, y = _blobs()
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_one_neighbor_memorizes(self):
        X, y = _blobs(n=50)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_neighbor_indices_exact(self):
        X = np.array([[0.0], [1.0], [10.0]])
        q = np.array([[0.9]])
        idx = nearest_neighbor_indices(X, q, 2)
        assert idx[0].tolist() == [1, 0]

    def test_k_capped_at_train_size(self):
        X = np.array([[0.0], [1.0]])
        idx = nearest_neighbor_indices(X, X, 10)
        assert idx.shape == (2, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0).fit(np.ones((3, 1)), [0, 1, 0])


class TestSimpleImputer:
    def test_mean_strategy(self):
        X = np.array([[1.0], [3.0], [np.nan]])
        out = SimpleImputer("mean").fit_transform(X)
        assert out[2, 0] == 2.0

    def test_median_strategy(self):
        X = np.array([[1.0], [2.0], [100.0], [np.nan]])
        out = SimpleImputer("median").fit_transform(X)
        assert out[3, 0] == 2.0

    def test_most_frequent(self):
        X = np.array([[1.0], [1.0], [5.0], [np.nan]])
        out = SimpleImputer("most_frequent").fit_transform(X)
        assert out[3, 0] == 1.0

    def test_constant(self):
        X = np.array([[np.nan]])
        out = SimpleImputer("constant", fill_value=-1.0).fit_transform(X)
        assert out[0, 0] == -1.0

    def test_statistics_from_fit_split_only(self):
        imputer = SimpleImputer("mean").fit(np.array([[0.0], [4.0]]))
        out = imputer.transform(np.array([[np.nan], [100.0]]))
        assert out[0, 0] == 2.0

    def test_all_missing_column_uses_fill_value(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer("mean", fill_value=9.0).fit_transform(X)
        assert (out == 9.0).all()

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer("mode")

"""Golden tests: vectorized one-vs-rest training is byte-identical to the
per-class loops it replaced (fixed seed, all losses and penalties)."""

import numpy as np
import pytest

from repro.learn import LogisticRegressionGD, SGDClassifier

from .reference_impl import fit_gd_per_target, fit_ovr_per_class


def multiclass(n, d, n_classes, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    centers = rng.normal(size=(n_classes, d))
    y = np.argmax(X @ centers.T, axis=1)
    return X, np.asarray([f"class_{i}" for i in range(n_classes)], dtype=object)[y]


class TestSGDOneVsRest:
    @pytest.mark.parametrize("loss", ["log", "hinge"])
    @pytest.mark.parametrize("penalty", ["l2", "l1", "elasticnet", "none"])
    def test_coefficients_byte_identical(self, loss, penalty):
        X, y = multiclass(300, 10, 4)
        spec = dict(
            loss=loss, penalty=penalty, max_iter=6, batch_size=32, random_state=5
        )
        model = SGDClassifier(**spec).fit(X, y)
        coef, intercept = fit_ovr_per_class(SGDClassifier(**spec), X, y)
        assert np.array_equal(model.coef_, coef)
        assert np.array_equal(model.intercept_, intercept)

    def test_without_shuffling(self):
        X, y = multiclass(200, 8, 3, seed=2)
        spec = dict(loss="log", max_iter=4, batch_size=16, shuffle=False, random_state=0)
        model = SGDClassifier(**spec).fit(X, y)
        coef, intercept = fit_ovr_per_class(SGDClassifier(**spec), X, y)
        assert np.array_equal(model.coef_, coef)
        assert np.array_equal(model.intercept_, intercept)

    def test_many_classes_with_uneven_convergence(self):
        # enough epochs that some classes converge early and drop out of
        # the shared loop while others keep training
        X, y = multiclass(500, 12, 7, seed=4)
        spec = dict(loss="log", max_iter=25, batch_size=64, tol=1e-3, random_state=1)
        model = SGDClassifier(**spec).fit(X, y)
        coef, intercept = fit_ovr_per_class(SGDClassifier(**spec), X, y)
        assert np.array_equal(model.coef_, coef)
        assert np.array_equal(model.intercept_, intercept)

    def test_predictions_cover_all_classes(self):
        X, y = multiclass(400, 10, 5)
        model = SGDClassifier(loss="log", max_iter=10, random_state=0).fit(X, y)
        assert set(np.unique(model.predict(X))) <= set(np.unique(y))
        assert model.coef_.shape == (5, 10)


class TestLogisticRegressionGDOneVsRest:
    def test_multiclass_byte_identical(self):
        X, y = multiclass(300, 9, 5, seed=1)
        model = LogisticRegressionGD(max_iter=60, random_state=0).fit(X, y)
        coef, intercept = fit_gd_per_target(
            LogisticRegressionGD(max_iter=60, random_state=0), X, y
        )
        assert np.array_equal(model.coef_, coef)
        assert np.array_equal(model.intercept_, intercept)

    def test_binary_byte_identical(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(250, 6))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = LogisticRegressionGD(max_iter=100, random_state=0).fit(X, y)
        coef, intercept = fit_gd_per_target(
            LogisticRegressionGD(max_iter=100, random_state=0), X, y
        )
        assert np.array_equal(model.coef_, coef)
        assert np.array_equal(model.intercept_, intercept)

    def test_weighted_byte_identical(self):
        X, y = multiclass(220, 7, 4, seed=6)
        weights = np.random.default_rng(9).random(len(y)) + 0.25
        model = LogisticRegressionGD(max_iter=40, random_state=0).fit(
            X, y, sample_weight=weights
        )
        coef, intercept = fit_gd_per_target(
            LogisticRegressionGD(max_iter=40, random_state=0), X, y, sample_weight=weights
        )
        assert np.array_equal(model.coef_, coef)
        assert np.array_equal(model.intercept_, intercept)

    def test_uneven_convergence_across_targets(self):
        X, y = multiclass(300, 8, 6, seed=3)
        spec = dict(max_iter=150, tol=1e-5, random_state=0)
        model = LogisticRegressionGD(**spec).fit(X, y)
        coef, intercept = fit_gd_per_target(LogisticRegressionGD(**spec), X, y)
        assert np.array_equal(model.coef_, coef)
        assert np.array_equal(model.intercept_, intercept)

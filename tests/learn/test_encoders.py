"""Unit tests for the alternative categorical encoders."""

import numpy as np
import pytest

from repro.learn import FrequencyEncoder, SVDEmbeddingEncoder, TargetEncoder


def _cols(*columns):
    return [np.asarray(c, dtype=object) for c in columns]


class TestFrequencyEncoder:
    def test_frequencies_from_fit_data(self):
        encoder = FrequencyEncoder().fit(_cols(["a", "a", "a", "b"]))
        out = encoder.transform(_cols(["a", "b"]))
        assert out[0, 0] == 0.75
        assert out[1, 0] == 0.25

    def test_unseen_category_is_zero(self):
        encoder = FrequencyEncoder().fit(_cols(["a", "b"]))
        assert encoder.transform(_cols(["z"]))[0, 0] == 0.0

    def test_one_dimension_per_feature(self):
        encoder = FrequencyEncoder().fit(_cols(["a", "b"], ["x", "x"]))
        assert encoder.transform(_cols(["a", "b"], ["x", "y"])).shape == (2, 2)

    def test_missing_bucketed(self):
        encoder = FrequencyEncoder().fit(_cols(["a", None, None, "a"]))
        out = encoder.transform(_cols([None]))
        assert out[0, 0] == 0.5

    def test_width_mismatch(self):
        encoder = FrequencyEncoder().fit(_cols(["a"]))
        with pytest.raises(ValueError, match="features"):
            encoder.transform(_cols(["a"], ["b"]))

    def test_feature_names(self):
        encoder = FrequencyEncoder().fit(_cols(["a"]))
        assert encoder.feature_names(["job"]) == ["job:frequency"]


class TestTargetEncoder:
    def test_unsmoothed_means(self):
        encoder = TargetEncoder(smoothing=0.0).fit(
            _cols(["a", "a", "b", "b"]), y=[1.0, 1.0, 0.0, 1.0]
        )
        out = encoder.transform(_cols(["a", "b"]))
        assert out[0, 0] == 1.0
        assert out[1, 0] == 0.5

    def test_smoothing_pulls_to_global_rate(self):
        y = [1.0, 0.0, 0.0, 0.0]  # global rate 0.25; 'a' has rate 1.0 on 1 row
        encoder = TargetEncoder(smoothing=100.0).fit(_cols(["a", "b", "b", "b"]), y=y)
        out = encoder.transform(_cols(["a"]))
        assert abs(out[0, 0] - 0.25) < 0.01

    def test_unseen_gets_global_rate(self):
        encoder = TargetEncoder(smoothing=0.0).fit(_cols(["a", "b"]), y=[1.0, 0.0])
        assert encoder.transform(_cols(["z"]))[0, 0] == 0.5

    def test_requires_labels(self):
        with pytest.raises(ValueError, match="labels"):
            TargetEncoder().fit(_cols(["a"]))

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            TargetEncoder().fit(_cols(["a", "b"]), y=[1.0])

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            TargetEncoder(smoothing=-1.0)

    def test_statistics_never_from_transform_data(self):
        encoder = TargetEncoder(smoothing=0.0).fit(
            _cols(["a", "a"]), y=[1.0, 1.0]
        )
        # transform with contradictory data: table must still say 1.0
        assert encoder.transform(_cols(["a", "a", "a"]))[0, 0] == 1.0


class TestSVDEmbeddingEncoder:
    def test_output_width_capped_by_rank(self):
        encoder = SVDEmbeddingEncoder(n_components=50).fit(_cols(["a", "b", "a"]))
        out = encoder.transform(_cols(["a", "b"]))
        assert out.shape[0] == 2
        assert out.shape[1] <= 3  # one-hot width caps the rank

    def test_requested_components_respected_when_possible(self):
        columns = _cols(["a", "b", "c", "d", "a", "b"], ["x", "y", "x", "y", "x", "y"])
        encoder = SVDEmbeddingEncoder(n_components=2).fit(columns)
        assert encoder.transform(columns).shape == (6, 2)

    def test_identical_categories_map_to_identical_embeddings(self):
        columns = _cols(["a", "b", "a", "b"])
        encoder = SVDEmbeddingEncoder(n_components=2).fit(columns)
        out = encoder.transform(columns)
        assert np.allclose(out[0], out[2])
        assert not np.allclose(out[0], out[1])

    def test_unseen_category_does_not_crash(self):
        encoder = SVDEmbeddingEncoder(n_components=2).fit(_cols(["a", "b"]))
        out = encoder.transform(_cols(["z"]))
        assert np.isfinite(out).all()

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            SVDEmbeddingEncoder(n_components=0)

    def test_feature_names(self):
        encoder = SVDEmbeddingEncoder(n_components=2).fit(_cols(["a", "b", "c"]))
        names = encoder.feature_names()
        assert names[0] == "embedding_0"
        assert len(names) == encoder.components_.shape[0]

"""Unit tests for KFold, StratifiedKFold, ParameterGrid and GridSearchCV."""

import numpy as np
import pytest

from repro.learn import (
    DecisionTreeClassifier,
    GridSearchCV,
    KFold,
    ParameterGrid,
    Pipeline,
    SGDClassifier,
    StandardScaler,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)


class TestKFold:
    def test_folds_partition_indices(self):
        folds = list(KFold(5, random_state=0).split(53))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(53))

    def test_train_test_disjoint(self):
        for train, test in KFold(4, random_state=1).split(40):
            assert len(np.intersect1d(train, test)) == 0

    def test_deterministic(self):
        a = [t.tolist() for _, t in KFold(3, random_state=5).split(30)]
        b = [t.tolist() for _, t in KFold(3, random_state=5).split(30)]
        assert a == b

    def test_no_shuffle_is_contiguous(self):
        folds = list(KFold(2, shuffle=False).split(4))
        assert folds[0][1].tolist() == [0, 1]

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="cannot split"):
            list(KFold(5).split(3))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestStratifiedKFold:
    def test_class_proportions_preserved(self):
        y = np.array([0] * 80 + [1] * 20)
        for _, test in StratifiedKFold(5, random_state=0).split(y):
            positives = (y[test] == 1).sum()
            assert positives == 4

    def test_partition(self):
        y = np.array([0, 1] * 10)
        folds = list(StratifiedKFold(2, random_state=0).split(y))
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_rare_class_error(self):
        y = np.array([0] * 10 + [1])
        with pytest.raises(ValueError, match="members"):
            list(StratifiedKFold(2).split(y))


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(100, 0.2, random_state=0)
        assert len(train) == 80 and len(test) == 20

    def test_disjoint_exhaustive(self):
        train, test = train_test_split(30, 0.5, random_state=1)
        assert sorted(np.concatenate([train, test]).tolist()) == list(range(30))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, 1.5, random_state=0)


class TestParameterGrid:
    def test_cartesian_product_size(self):
        grid = ParameterGrid({"a": [1, 2, 3], "b": ["x", "y"]})
        assert len(grid) == 6
        assert len(list(grid)) == 6

    def test_stable_order(self):
        grid = ParameterGrid({"b": [1], "a": [2]})
        first = next(iter(grid))
        assert list(first.keys()) == ["a", "b"]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({})

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})

    def test_non_list_rejected(self):
        with pytest.raises(TypeError):
            ParameterGrid({"a": 5})


def _data(seed=0, n=120):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


class TestGridSearchCV:
    def test_finds_reasonable_params_and_refits(self):
        X, y = _data()
        search = GridSearchCV(
            DecisionTreeClassifier(),
            {"max_depth": [1, 3, 5]},
            cv=3,
            random_state=0,
        ).fit(X, y)
        assert search.best_params_["max_depth"] in (1, 3, 5)
        assert search.best_estimator_.score(X, y) > 0.8

    def test_cv_results_structure(self):
        X, y = _data()
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [1, 2]}, cv=3, random_state=0
        ).fit(X, y)
        assert len(search.cv_results_) == 2
        entry = search.cv_results_[0]
        assert set(entry) == {"params", "mean_score", "std_score", "fold_scores"}
        assert len(entry["fold_scores"]) == 3

    def test_best_score_is_max_mean(self):
        X, y = _data()
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [1, 4]}, cv=3, random_state=0
        ).fit(X, y)
        assert search.best_score_ == max(r["mean_score"] for r in search.cv_results_)

    def test_pipeline_param_routing(self):
        X, y = _data()
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("learner", SGDClassifier(random_state=0)),
        ])
        search = GridSearchCV(
            pipe,
            {"learner__alpha": [0.0001, 0.01], "learner__penalty": ["l2", "l1"]},
            cv=3,
            random_state=0,
        ).fit(X, y)
        assert set(search.best_params_) == {"learner__alpha", "learner__penalty"}

    def test_sample_weight_passthrough(self):
        X, y = _data()
        w = np.ones(len(y))
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [2]}, cv=3, random_state=0
        ).fit(X, y, sample_weight=w)
        assert hasattr(search, "best_estimator_")

    def test_deterministic_given_seed(self):
        X, y = _data()
        grid = {"max_depth": [1, 2, 3]}
        a = GridSearchCV(DecisionTreeClassifier(), grid, cv=3, random_state=9).fit(X, y)
        b = GridSearchCV(DecisionTreeClassifier(), grid, cv=3, random_state=9).fit(X, y)
        assert a.best_params_ == b.best_params_
        assert [r["fold_scores"] for r in a.cv_results_] == [
            r["fold_scores"] for r in b.cv_results_
        ]

    def test_predict_delegates(self):
        X, y = _data()
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [3]}, cv=3, random_state=0
        ).fit(X, y)
        assert search.predict(X).shape == y.shape
        assert search.predict_proba(X).shape == (len(y), 2)

    def test_custom_scoring(self):
        X, y = _data()

        def always_prefer_depth_one(model, X_val, y_val):
            depth = model.get_params()["max_depth"]
            return 1.0 if depth == 1 else 0.0

        search = GridSearchCV(
            DecisionTreeClassifier(),
            {"max_depth": [1, 5]},
            cv=3,
            scoring=always_prefer_depth_one,
            random_state=0,
        ).fit(X, y)
        assert search.best_params_["max_depth"] == 1


class TestCrossValScore:
    def test_returns_per_fold_scores(self):
        X, y = _data()
        scores = cross_val_score(DecisionTreeClassifier(max_depth=3), X, y, cv=4, random_state=0)
        assert scores.shape == (4,)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_deterministic(self):
        X, y = _data()
        a = cross_val_score(DecisionTreeClassifier(max_depth=2), X, y, cv=3, random_state=1)
        b = cross_val_score(DecisionTreeClassifier(max_depth=2), X, y, cv=3, random_state=1)
        assert np.array_equal(a, b)


class TestCrossValScoreScoring:
    def test_custom_scoring_is_used(self):
        X, y = _data()

        def negative_accuracy(model, X_val, y_val):
            return -np.mean(model.predict(X_val) == y_val)

        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=3), X, y, cv=3, random_state=0,
            scoring=negative_accuracy,
        )
        assert (scores <= 0).all()

    def test_default_scoring_unchanged(self):
        X, y = _data()
        default = cross_val_score(
            DecisionTreeClassifier(max_depth=2), X, y, cv=3, random_state=1
        )
        explicit = cross_val_score(
            DecisionTreeClassifier(max_depth=2), X, y, cv=3, random_state=1,
            scoring=lambda model, X_val, y_val: float(
                np.mean(model.predict(X_val) == y_val)
            ),
        )
        assert np.array_equal(default, explicit)

    def test_scoring_receives_fitted_estimator(self):
        X, y = _data()
        seen = []

        def probe(model, X_val, y_val):
            seen.append(model.depth_)
            return 0.0

        cross_val_score(
            DecisionTreeClassifier(max_depth=2), X, y, cv=3, random_state=0,
            scoring=probe,
        )
        assert len(seen) == 3


class TestGridSearchNJobs:
    def test_parallel_equals_serial(self):
        X, y = _data(n=150)
        grid = {"max_depth": [1, 2, 3], "criterion": ["gini", "entropy"]}
        serial = GridSearchCV(
            DecisionTreeClassifier(), grid, cv=3, random_state=4
        ).fit(X, y)
        fanned = GridSearchCV(
            DecisionTreeClassifier(), grid, cv=3, random_state=4, n_jobs=2
        ).fit(X, y)
        assert serial.cv_results_ == fanned.cv_results_
        assert serial.best_params_ == fanned.best_params_

    def test_parallel_with_custom_unpicklable_scoring(self):
        # fork inherits closures: the scorer never crosses the boundary
        X, y = _data(n=120)
        offset = 0.25

        def shifted(model, X_val, y_val):
            return float(np.mean(model.predict(X_val) == y_val)) + offset

        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [1, 2]}, cv=3,
            random_state=0, scoring=shifted, n_jobs=2,
        ).fit(X, y)
        assert all(r["mean_score"] > offset - 1e-9 for r in search.cv_results_)

    def test_n_jobs_on_non_tree_estimator(self):
        X, y = _data(n=120)
        grid = {"alpha": [0.0001, 0.01]}
        serial = GridSearchCV(
            SGDClassifier(random_state=0), grid, cv=3, random_state=0
        ).fit(X, y)
        fanned = GridSearchCV(
            SGDClassifier(random_state=0), grid, cv=3, random_state=0, n_jobs=2
        ).fit(X, y)
        assert serial.cv_results_ == fanned.cv_results_

"""Unit tests for the estimator contract in repro.learn.base."""

import numpy as np
import pytest

from repro.learn import (
    NotFittedError,
    SGDClassifier,
    StandardScaler,
    check_labels,
    check_matrix,
    check_sample_weight,
    clone,
)
from repro.learn.base import BaseEstimator


class _Toy(BaseEstimator):
    def __init__(self, a=1, b="x", nested=None):
        self.a = a
        self.b = b
        self.nested = nested


class TestParams:
    def test_get_params_reflects_constructor(self):
        toy = _Toy(a=5, b="y")
        assert toy.get_params() == {"a": 5, "b": "y", "nested": None}

    def test_set_params_roundtrip(self):
        toy = _Toy()
        toy.set_params(a=9)
        assert toy.a == 9

    def test_set_params_unknown_raises(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            _Toy().set_params(c=1)

    def test_repr_contains_params(self):
        assert "a=3" in repr(_Toy(a=3))


class TestClone:
    def test_clone_copies_hyperparameters(self):
        original = SGDClassifier(alpha=0.005, penalty="l1", random_state=3)
        copy = clone(original)
        assert copy.get_params() == original.get_params()

    def test_clone_drops_fitted_state(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        model = SGDClassifier(random_state=0).fit(X, y)
        fresh = clone(model)
        assert not hasattr(fresh, "coef_")

    def test_clone_deep_copies_nested_estimators(self):
        inner = _Toy(a=7)
        outer = _Toy(nested=inner)
        copy = clone(outer)
        assert copy.nested is not inner
        assert copy.nested.a == 7

    def test_not_fitted_error(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.array([[1.0]]))


class TestValidation:
    def test_check_matrix_promotes_1d(self):
        assert check_matrix(np.array([1.0, 2.0])).shape == (2, 1)

    def test_check_matrix_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_matrix(np.array([[np.nan]]))

    def test_check_matrix_rejects_inf(self):
        with pytest.raises(ValueError, match="infinite"):
            check_matrix(np.array([[np.inf]]))

    def test_check_matrix_rejects_empty(self):
        with pytest.raises(ValueError, match="no rows"):
            check_matrix(np.empty((0, 3)))

    def test_check_labels_length_mismatch(self):
        with pytest.raises(ValueError, match="entries"):
            check_labels(np.array([1, 2]), 3)

    def test_check_sample_weight_defaults_to_ones(self):
        w = check_sample_weight(None, 4)
        assert (w == 1.0).all()

    def test_check_sample_weight_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_sample_weight(np.array([1.0, -1.0]), 2)

    def test_check_sample_weight_rejects_all_zero(self):
        with pytest.raises(ValueError, match="zero"):
            check_sample_weight(np.zeros(3), 3)

    def test_check_sample_weight_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_sample_weight(np.ones(2), 3)

"""Tests for the shared fork-based group runner (repro.parallel)."""

import numpy as np
import pytest

from repro import parallel
from repro.learn import SGDClassifier
from repro.learn.linear import _OVR_SIGNS_LIMIT

from .reference_impl import fit_ovr_per_class


def _double(payload, group):
    return [payload * value for value in group]


class TestRunGroups:
    def test_serial_reports_in_order(self):
        seen = []
        parallel.run_groups(
            10, _double, [[1], [2], [3]], 1,
            lambda index, group, result: seen.append((index, result)),
        )
        assert seen == [(0, [10]), (1, [20]), (2, [30])]

    @pytest.mark.skipif(not parallel.fork_available(), reason="needs fork")
    def test_parallel_matches_serial(self):
        groups = [[1, 2], [3], [4, 5, 6], [7]]
        results = {}
        parallel.run_groups(
            3, _double, groups, 3,
            lambda index, group, result: results.__setitem__(index, result),
        )
        assert results == {0: [3, 6], 1: [9], 2: [12, 15, 18], 3: [21]}

    @pytest.mark.skipif(not parallel.fork_available(), reason="needs fork")
    def test_nested_run_groups_is_reentrant(self):
        # a worker that itself fans out (the GridSearchCV n_jobs knob
        # inside an executor worker) must not clobber the state its own
        # pool parent published — the next task dispatched to the same
        # worker process still needs it
        def nested(payload, group):
            inner = []
            parallel.run_groups(
                payload, _double, [group, group], 2,
                lambda index, g, result: inner.extend(result),
            )
            return sorted(inner)

        results = {}
        parallel.run_groups(
            2, nested, [[1], [2], [3], [4], [5], [6]], 2,
            lambda index, group, result: results.__setitem__(index, result),
        )
        assert results == {i: [2 * (i + 1)] * 2 for i in range(6)}

    def test_failure_still_reports_completed_groups(self):
        def explode_on_two(payload, group):
            if group == [2]:
                raise RuntimeError("boom")
            return group

        seen = []
        with pytest.raises(RuntimeError, match="boom"):
            parallel.run_groups(
                None, explode_on_two, [[1], [2], [3]], 1,
                lambda index, group, result: seen.append(index),
            )
        assert seen == [0]


class TestSGDSignsCap:
    def test_loop_fallback_beyond_signs_limit(self, monkeypatch):
        import repro.learn.linear as linear

        X = np.random.default_rng(0).normal(size=(120, 6))
        y = np.random.default_rng(1).integers(0, 4, 120)
        spec = dict(loss="log", max_iter=4, batch_size=16, random_state=2)
        stacked = SGDClassifier(**spec).fit(X, y)
        monkeypatch.setattr(linear, "_OVR_SIGNS_LIMIT", 1)
        looped = SGDClassifier(**spec).fit(X, y)
        assert np.array_equal(stacked.coef_, looped.coef_)
        assert np.array_equal(stacked.intercept_, looped.intercept_)
        reference = fit_ovr_per_class(SGDClassifier(**spec), X, y)
        assert np.array_equal(looped.coef_, reference[0])

    def test_limit_is_memory_scaled(self):
        assert _OVR_SIGNS_LIMIT >= 2**24

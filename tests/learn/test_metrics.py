"""Unit tests for accuracy-oriented metrics."""

import numpy as np
import pytest

from repro.learn import (
    accuracy_score,
    balanced_accuracy_score,
    binary_counts,
    brier_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_half(self):
        assert accuracy_score([1, 0], [1, 1]) == 0.5

    def test_weighted(self):
        acc = accuracy_score([1, 0], [1, 1], sample_weight=[3.0, 1.0])
        assert acc == pytest.approx(0.75)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 0], [1])


class TestConfusionMatrix:
    def test_binary_layout(self):
        m = confusion_matrix([1, 1, 0, 0], [1, 0, 0, 1], labels=[0, 1])
        # rows true, cols predicted
        assert m[0, 0] == 1 and m[0, 1] == 1 and m[1, 0] == 1 and m[1, 1] == 1

    def test_weights(self):
        m = confusion_matrix([1, 1], [1, 1], labels=[0, 1], sample_weight=[2.0, 3.0])
        assert m[1, 1] == 5.0

    def test_label_outside_set_raises(self):
        with pytest.raises(ValueError, match="outside"):
            confusion_matrix([2], [2], labels=[0, 1])

    def test_counts_identities(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 0, 1, 0, 1]
        c = binary_counts(y_true, y_pred, positive_label=1)
        assert c["TP"] == 2 and c["FN"] == 1 and c["TN"] == 1 and c["FP"] == 1
        assert c["TP"] + c["FN"] + c["TN"] + c["FP"] == len(y_true)


class TestPRF:
    def test_precision_recall_f1(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        assert precision_score(y_true, y_pred) == 0.5
        assert recall_score(y_true, y_pred) == 0.5
        assert f1_score(y_true, y_pred) == 0.5

    def test_no_predicted_positives_gives_nan_precision(self):
        assert np.isnan(precision_score([1, 0], [0, 0]))

    def test_no_actual_positives_gives_nan_recall(self):
        assert np.isnan(recall_score([0, 0], [1, 0]))

    def test_balanced_accuracy(self):
        y_true = [1, 1, 1, 0]
        y_pred = [1, 1, 0, 0]
        # TPR = 2/3, TNR = 1
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx((2 / 3 + 1) / 2)


class TestAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reverse_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_ties(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_nan(self):
        assert np.isnan(roc_auc_score([1, 1], [0.2, 0.9]))

    def test_matches_pair_counting(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 50)
        s = rng.normal(size=50)
        pos = s[y == 1]
        neg = s[y == 0]
        pairs = sum(
            1.0 if p > q else (0.5 if p == q else 0.0) for p in pos for q in neg
        )
        expected = pairs / (len(pos) * len(neg))
        assert roc_auc_score(y, s) == pytest.approx(expected)


class TestProbMetrics:
    def test_log_loss_confident_correct_is_small(self):
        assert log_loss([1, 0], [0.99, 0.01]) < 0.05

    def test_log_loss_accepts_two_column_proba(self):
        proba = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert log_loss([1, 0], proba) < 0.3

    def test_brier_perfect(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0

    def test_brier_worst(self):
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0


class TestConfusionMatrixFastPath:
    """The searchsorted/bincount accumulation must match the dict loop."""

    def loop(self, y_true, y_pred, labels, sample_weight=None):
        from repro.learn.metrics import _confusion_matrix_loop, _weights

        y_true = np.asarray(y_true)
        return _confusion_matrix_loop(
            y_true, np.asarray(y_pred), list(labels), _weights(sample_weight, len(y_true))
        )

    def test_weighted_string_labels_match_loop(self):
        rng = np.random.default_rng(0)
        labels = ["alpha", "beta", "gamma", "delta"]
        pool = np.asarray(labels, dtype=object)
        y_true = pool[rng.integers(0, 4, 2000)]
        y_pred = pool[rng.integers(0, 4, 2000)]
        weights = rng.random(2000)
        fast = confusion_matrix(y_true, y_pred, labels=labels, sample_weight=weights)
        assert np.array_equal(fast, self.loop(y_true, y_pred, labels, weights))

    def test_unsorted_numeric_label_order_is_respected(self):
        labels = [5, 1, 3]
        y_true = np.asarray([5, 1, 3, 3, 5])
        y_pred = np.asarray([1, 1, 3, 5, 5])
        fast = confusion_matrix(y_true, y_pred, labels=labels)
        assert np.array_equal(fast, self.loop(y_true, y_pred, labels))
        assert fast[0, 1] == 1.0  # true 5 predicted 1 lands at (row 5, col 1)

    def test_out_of_set_error_matches_loop(self):
        with pytest.raises(ValueError, match="label outside provided label set"):
            confusion_matrix(["a", "z"], ["a", "a"], labels=["a", "b"])
        # the first offending row is reported, as in the loop
        try:
            confusion_matrix(["a", "z", "q"], ["a", "a", "a"], labels=["a", "b"])
        except ValueError as error:
            assert "'z'" in str(error) and "'q'" not in str(error)

    def test_prediction_outside_label_set(self):
        with pytest.raises(ValueError, match="label outside provided label set"):
            confusion_matrix(["a", "a"], ["a", "q"], labels=["a", "b"])

    def test_unsortable_mixed_labels_fall_back_to_loop(self):
        labels = [1, "a"]
        y = np.asarray([1, "a", 1], dtype=object)
        p = np.asarray(["a", "a", 1], dtype=object)
        out = confusion_matrix(y, p, labels=labels)
        assert out.sum() == 3.0
        assert np.array_equal(out, self.loop(y, p, labels))

    def test_empty_input(self):
        out = confusion_matrix([], [], labels=["a", "b"])
        assert np.array_equal(out, np.zeros((2, 2)))

"""Unit tests for SGDClassifier and LogisticRegressionGD."""

import numpy as np
import pytest

from repro.learn import LogisticRegressionGD, SGDClassifier, StandardScaler


def _blobs(seed=0, n=300, separation=4.0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n // 2, 2))
    X1 = rng.normal(separation, 1.0, size=(n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestSGDClassifier:
    def test_learns_separable_blobs(self):
        X, y = _blobs()
        model = SGDClassifier(random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predict_proba_sums_to_one(self):
        X, y = _blobs()
        model = SGDClassifier(random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_proba_unavailable_for_hinge(self):
        X, y = _blobs()
        model = SGDClassifier(loss="hinge", random_state=0).fit(X, y)
        with pytest.raises(AttributeError):
            model.predict_proba(X)

    def test_hinge_learns_too(self):
        X, y = _blobs()
        model = SGDClassifier(loss="hinge", random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_deterministic_per_seed(self):
        X, y = _blobs()
        a = SGDClassifier(random_state=42).fit(X, y)
        b = SGDClassifier(random_state=42).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)
        assert np.allclose(a.intercept_, b.intercept_)

    def test_seed_changes_trajectory(self):
        X, y = _blobs()
        a = SGDClassifier(random_state=1, max_iter=2, tol=0.0).fit(X, y)
        b = SGDClassifier(random_state=2, max_iter=2, tol=0.0).fit(X, y)
        assert not np.allclose(a.coef_, b.coef_)

    def test_l1_penalty_sparsifies(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 10))
        y = (X[:, 0] > 0).astype(int)  # only feature 0 is informative
        dense = SGDClassifier(penalty="l2", alpha=1e-4, random_state=0).fit(X, y)
        sparse = SGDClassifier(penalty="l1", alpha=0.01, random_state=0).fit(X, y)
        assert (np.abs(sparse.coef_) < 1e-4).sum() >= (np.abs(dense.coef_) < 1e-4).sum()

    def test_elasticnet_accepted(self):
        X, y = _blobs()
        model = SGDClassifier(penalty="elasticnet", random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_sample_weight_shifts_decision(self):
        # one cluster heavily upweighted should dominate the fit
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        w = np.array([100.0, 100.0, 1.0, 1.0])
        model = SGDClassifier(random_state=0, max_iter=50).fit(X, y, sample_weight=w)
        # prediction at the midpoint should lean toward the upweighted class
        assert model.predict(np.array([[1.6]]))[0] in (0, 1)  # sanity: it predicts
        proba_up = model.predict_proba(np.array([[1.0]]))[0, 0]
        assert proba_up > 0.5

    def test_unscaled_features_break_training(self):
        """The Figure 3 mechanism: raw-scale features defeat the optimal schedule."""
        rng = np.random.default_rng(7)
        n = 200
        X = np.column_stack(
            [rng.normal(60.0, 8.0, n) * 1000.0, rng.normal(70.0, 7.0, n) * 1000.0]
        )
        y = (0.6 * X[:, 0] + 0.4 * X[:, 1] > 65000.0).astype(int)
        raw = SGDClassifier(random_state=0, max_iter=20).fit(X, y)
        scaled_X = StandardScaler().fit_transform(X)
        scaled = SGDClassifier(random_state=0, max_iter=20).fit(scaled_X, y)
        assert scaled.score(scaled_X, y) > 0.9
        assert raw.score(X, y) < scaled.score(scaled_X, y)

    def test_multiclass_one_vs_rest(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
        X = np.vstack([rng.normal(c, 0.7, size=(60, 2)) for c in centers])
        y = np.repeat([0, 1, 2], 60)
        model = SGDClassifier(random_state=0, max_iter=40).fit(X, y)
        assert model.score(X, y) > 0.9
        proba = model.predict_proba(X)
        assert proba.shape == (180, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            SGDClassifier().fit(np.ones((3, 1)), np.array([1, 1, 1]))

    def test_invalid_loss_and_penalty(self):
        X, y = _blobs(n=10)
        with pytest.raises(ValueError, match="loss"):
            SGDClassifier(loss="squared").fit(X, y)
        with pytest.raises(ValueError, match="penalty"):
            SGDClassifier(penalty="l3").fit(X, y)

    def test_feature_width_check_at_predict(self):
        X, y = _blobs(n=20)
        model = SGDClassifier(random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((2, 5)))

    def test_string_class_labels_preserved(self):
        X, y = _blobs(n=40)
        labels = np.where(y == 1, "good", "bad")
        model = SGDClassifier(random_state=0).fit(X, labels)
        assert set(model.predict(X)) <= {"good", "bad"}


class TestLogisticRegressionGD:
    def test_learns_blobs(self):
        X, y = _blobs()
        model = LogisticRegressionGD().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_proba_monotone_in_score(self):
        X, y = _blobs()
        model = LogisticRegressionGD().fit(X, y)
        scores = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(scores)
        assert (np.diff(proba[order]) >= -1e-12).all()

    def test_multiclass(self):
        rng = np.random.default_rng(3)
        centers = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
        X = np.vstack([rng.normal(c, 0.6, size=(50, 2)) for c in centers])
        y = np.repeat(["a", "b", "c"], 50)
        model = LogisticRegressionGD().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_sample_weight_effect(self):
        X = np.array([[-1.0], [1.0], [1.2]])
        y = np.array([0, 1, 0])
        # upweight the contrarian point; boundary should move right
        heavy = LogisticRegressionGD().fit(X, y, sample_weight=np.array([1.0, 1.0, 50.0]))
        light = LogisticRegressionGD().fit(X, y, sample_weight=np.array([1.0, 1.0, 0.1]))
        assert heavy.predict_proba(np.array([[1.2]]))[0, 1] < light.predict_proba(
            np.array([[1.2]])
        )[0, 1]

    def test_deterministic(self):
        X, y = _blobs()
        a = LogisticRegressionGD().fit(X, y)
        b = LogisticRegressionGD().fit(X, y)
        assert np.allclose(a.coef_, b.coef_)

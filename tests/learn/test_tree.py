"""Unit tests for DecisionTreeClassifier."""

import numpy as np
import pytest

from repro.learn import DecisionTreeClassifier


def _xor(seed=0, n=400):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestFitting:
    def test_fits_xor_perfectly_with_depth(self):
        X, y = _xor()
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert model.score(X, y) > 0.98

    def test_depth_limit_respected(self):
        X, y = _xor()
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth_ <= 2

    def test_stump_on_linear_data(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert model.score(X, y) == 1.0
        assert model.tree_.threshold == pytest.approx(1.5)

    def test_min_samples_leaf(self):
        X, y = _xor(n=100)
        model = DecisionTreeClassifier(min_samples_leaf=30).fit(X, y)
        # every leaf must hold at least 30 samples
        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 30
            else:
                check(node.left)
                check(node.right)
        check(model.tree_)

    def test_min_samples_split_blocks_small_nodes(self):
        X, y = _xor(n=50)
        model = DecisionTreeClassifier(min_samples_split=51).fit(X, y)
        assert model.tree_.is_leaf

    def test_entropy_criterion(self):
        X, y = _xor()
        model = DecisionTreeClassifier(criterion="entropy", max_depth=4).fit(X, y)
        assert model.score(X, y) > 0.98

    def test_invalid_criterion(self):
        with pytest.raises(ValueError, match="criterion"):
            DecisionTreeClassifier(criterion="mse").fit(np.ones((4, 1)), [0, 0, 1, 1])

    def test_invalid_min_samples(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1).fit(np.ones((4, 1)), [0, 0, 1, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0).fit(np.ones((4, 1)), [0, 0, 1, 1])

    def test_pure_node_becomes_leaf(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1, 1])
        model = DecisionTreeClassifier().fit(X, y)
        assert model.tree_.is_leaf
        assert list(model.predict(X)) == [1, 1]


class TestScaleInvariance:
    def test_predictions_invariant_to_feature_scaling(self):
        """The Figure 3(b) property: trees don't care about monotone rescaling."""
        X, y = _xor()
        model_raw = DecisionTreeClassifier(max_depth=5).fit(X, y)
        scale = np.array([1000.0, 0.001])
        model_scaled = DecisionTreeClassifier(max_depth=5).fit(X * scale, y)
        assert np.array_equal(model_raw.predict(X), model_scaled.predict(X * scale))


class TestWeights:
    def test_sample_weight_changes_majority(self):
        X = np.array([[0.0], [0.1], [0.2]])
        y = np.array([0, 0, 1])
        w = np.array([1.0, 1.0, 100.0])
        model = DecisionTreeClassifier(min_samples_split=10).fit(
            X, y, sample_weight=w
        )
        # forced leaf; prediction should follow the weighted majority
        assert model.predict(np.array([[0.0]]))[0] == 1

    def test_zero_weight_samples_ignored_in_distribution(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        w = np.array([1.0, 1.0, 1.0, 0.0])
        model = DecisionTreeClassifier(max_depth=1).fit(X, y, sample_weight=w)
        proba = model.predict_proba(np.array([[3.0]]))
        assert proba[0, 1] == pytest.approx(1.0)


class TestPrediction:
    def test_proba_rows_sum_to_one(self):
        X, y = _xor()
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_string_labels(self):
        X, y = _xor(n=100)
        labels = np.where(y == 1, "pos", "neg")
        model = DecisionTreeClassifier(max_depth=4).fit(X, labels)
        assert set(model.predict(X)) <= {"pos", "neg"}

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 3, size=(300, 1))
        y = np.floor(X[:, 0]).astype(int)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_width_mismatch_raises(self):
        X, y = _xor(n=50)
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((2, 7)))

    def test_deterministic(self):
        X, y = _xor()
        a = DecisionTreeClassifier(max_depth=6).fit(X, y)
        b = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))
        assert a.n_leaves_ == b.n_leaves_

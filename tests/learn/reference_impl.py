"""Frozen reference implementations for the presort/vectorization goldens.

These are verbatim copies of the pre-presort (per-node argsort) decision
tree splitter and of the per-class one-vs-rest training loops, kept only
so the golden tests can assert that the optimized backends reproduce the
seed behaviour node-for-node and byte-for-byte. Do not "fix" or optimize
this module — its value is that it does the work the slow way.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learn.base import (
    BaseEstimator,
    ClassifierMixin,
    check_labels,
    check_matrix,
    check_sample_weight,
)

_CRITERIA = ("gini", "entropy")


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "distribution", "n_samples")

    def __init__(self, distribution, n_samples):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.distribution = distribution
        self.n_samples = n_samples

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class ReferenceDecisionTree(BaseEstimator, ClassifierMixin):
    """The seed CART implementation: per-node argsort split search."""

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        random_state: Optional[int] = None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "ReferenceDecisionTree":
        if self.criterion not in _CRITERIA:
            raise ValueError(
                f"criterion must be one of {_CRITERIA}, got {self.criterion!r}"
            )
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        X = check_matrix(X)
        y = check_labels(y, X.shape[0])
        sample_weight = check_sample_weight(sample_weight, X.shape[0])
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        onehot = np.zeros((X.shape[0], len(self.classes_)))
        onehot[np.arange(X.shape[0]), y_codes] = sample_weight
        self.tree_ = self._build(X, onehot, np.arange(X.shape[0]), depth=0)
        return self

    def _build(self, X, onehot, indices, depth) -> _Node:
        class_weights = onehot[indices].sum(axis=0)
        node = _Node(distribution=class_weights, n_samples=len(indices))
        if (
            len(indices) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(class_weights) <= 1
        ):
            return node
        split = self._best_split(X, onehot, indices)
        if split is None:
            return node
        feature, threshold, gain = split
        if gain < self.min_impurity_decrease:
            return node
        go_left = X[indices, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, onehot, indices[go_left], depth + 1)
        node.right = self._build(X, onehot, indices[~go_left], depth + 1)
        return node

    def _best_split(self, X, onehot, indices):
        if onehot.shape[1] == 2:
            return self._best_split_binary(X, onehot, indices)
        return self._best_split_general(X, onehot, indices)

    def _best_split_binary(self, X, onehot, indices):
        node = X[indices]
        n, d = node.shape
        weights = onehot[indices].sum(axis=1)
        positives = onehot[indices][:, 1]
        node_weight = weights.sum()
        if node_weight <= 0:
            return None
        node_positive = positives.sum()
        node_impurity = self._impurity_binary(
            np.asarray([node_positive]), np.asarray([node_weight])
        )[0]

        order = np.argsort(node, axis=0, kind="mergesort")
        sorted_values = np.take_along_axis(node, order, axis=0)
        cum_weight = np.cumsum(weights[order], axis=0)
        cum_positive = np.cumsum(positives[order], axis=0)

        candidate = sorted_values[:-1] < sorted_values[1:]
        positions = np.arange(1, n)
        min_leaf = self.min_samples_leaf
        size_ok = (positions >= min_leaf) & (n - positions >= min_leaf)
        candidate &= size_ok[:, None]
        if not candidate.any():
            return None

        left_w = cum_weight[:-1]
        left_p = cum_positive[:-1]
        right_w = node_weight - left_w
        right_p = node_positive - left_p
        valid = candidate & (left_w > 0) & (right_w > 0)
        if not valid.any():
            return None
        left_impurity = self._impurity_binary(left_p, left_w)
        right_impurity = self._impurity_binary(right_p, right_w)
        children = (left_w * left_impurity + right_w * right_impurity) / node_weight
        gains = np.where(valid, node_impurity - children, -np.inf)
        flat = int(np.argmax(gains))
        row, feature = np.unravel_index(flat, gains.shape)
        if not np.isfinite(gains[row, feature]):
            return None
        threshold = 0.5 * (
            sorted_values[row, feature] + sorted_values[row + 1, feature]
        )
        return int(feature), float(threshold), float(gains[row, feature])

    def _impurity_binary(self, positive_weight, total_weight):
        safe = np.where(total_weight > 0, total_weight, 1.0)
        p = positive_weight / safe
        if self.criterion == "gini":
            return 2.0 * p * (1.0 - p)
        with np.errstate(divide="ignore", invalid="ignore"):
            entropy = -(
                np.where(p > 0, p * np.log2(p), 0.0)
                + np.where(p < 1, (1.0 - p) * np.log2(1.0 - p), 0.0)
            )
        return entropy

    def _best_split_general(self, X, onehot, indices):
        best = None
        best_gain = -np.inf
        node_counts = onehot[indices].sum(axis=0)
        node_weight = node_counts.sum()
        if node_weight <= 0:
            return None
        node_impurity = self._impurity(node_counts[None, :], node_weight)[0]
        min_leaf = self.min_samples_leaf
        n = len(indices)
        for feature in range(X.shape[1]):
            values = X[indices, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            sorted_onehot = onehot[indices[order]]
            left_cumulative = np.cumsum(sorted_onehot, axis=0)
            boundaries = np.nonzero(sorted_values[:-1] < sorted_values[1:])[0]
            if boundaries.size == 0:
                continue
            valid = boundaries[
                (boundaries + 1 >= min_leaf) & (n - boundaries - 1 >= min_leaf)
            ]
            if valid.size == 0:
                continue
            left_counts = left_cumulative[valid]
            right_counts = node_counts[None, :] - left_counts
            left_weight = left_counts.sum(axis=1)
            right_weight = right_counts.sum(axis=1)
            ok = (left_weight > 0) & (right_weight > 0)
            if not ok.any():
                continue
            left_impurity = self._impurity(left_counts, left_weight)
            right_impurity = self._impurity(right_counts, right_weight)
            children = (
                left_weight * left_impurity + right_weight * right_impurity
            ) / node_weight
            gains = np.where(ok, node_impurity - children, -np.inf)
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = float(gains[pick])
                position = valid[pick]
                threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
                best = (feature, float(threshold), best_gain)
        return best

    def _impurity(self, counts: np.ndarray, totals) -> np.ndarray:
        totals = np.asarray(totals, dtype=np.float64).reshape(-1, 1)
        safe = np.where(totals > 0, totals, 1.0)
        p = counts / safe
        if self.criterion == "gini":
            return 1.0 - (p**2).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            logp = np.where(p > 0, np.log2(p), 0.0)
        return -(p * logp).sum(axis=1)

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("tree_")
        X = check_matrix(X)
        out = np.empty((X.shape[0], len(self.classes_)))
        stack = [(self.tree_, np.arange(X.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                total = node.distribution.sum()
                leaf = (
                    node.distribution / total
                    if total > 0
                    else np.full(len(self.classes_), 1.0 / len(self.classes_))
                )
                out[rows] = leaf
                continue
            go_left = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[go_left]))
            stack.append((node.right, rows[~go_left]))
        return out

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


def fit_ovr_per_class(model, X, y):
    """The seed multi-class path: one independent binary fit per class.

    ``model`` must be an (unfitted) SGDClassifier clone; returns the
    stacked coefficients and intercepts the per-class loop produces.
    """
    X = check_matrix(X)
    y = check_labels(y, X.shape[0])
    sample_weight = check_sample_weight(None, X.shape[0])
    classes = np.unique(y)
    coefs, intercepts = [], []
    for klass in classes:
        signs = np.where(y == klass, 1.0, -1.0)
        w, b = model._fit_binary(X, signs, sample_weight)
        coefs.append(w)
        intercepts.append(b)
    return np.vstack(coefs), np.asarray(intercepts)


def fit_gd_per_target(model, X, y, sample_weight=None):
    """The seed LogisticRegressionGD path: one ``_fit_one`` per target."""
    X = check_matrix(X)
    y = check_labels(y, X.shape[0])
    sample_weight = check_sample_weight(sample_weight, X.shape[0])
    classes = np.unique(y)
    targets = [classes[1]] if len(classes) == 2 else list(classes)
    coefs, intercepts = [], []
    for klass in targets:
        t = (y == klass).astype(np.float64)
        w, b = _reference_fit_one(model, X, t, sample_weight)
        coefs.append(w)
        intercepts.append(b)
    return np.vstack(coefs), np.asarray(intercepts)


def _reference_fit_one(model, X, t, sample_weight):
    from repro.learn.linear import _sigmoid

    n_samples, n_features = X.shape
    w = np.zeros(n_features)
    b = 0.0
    weights = sample_weight / sample_weight.sum()
    previous = np.inf
    for _ in range(int(model.max_iter)):
        p = _sigmoid(X @ w + b)
        error = (p - t) * weights
        grad_w = X.T @ error + model.alpha * w
        grad_b = error.sum()
        w -= model.learning_rate * grad_w
        b -= model.learning_rate * grad_b
        loss = float(
            -(
                weights
                * (t * np.log(p + 1e-12) + (1 - t) * np.log(1 - p + 1e-12))
            ).sum()
        )
        if previous - loss < model.tol:
            break
        previous = loss
    return w, b

"""Serving acceptance: export → reload → score is byte-identical to the
in-process experiment on all four paper datasets, including in a genuinely
fresh interpreter (subprocess via the CLI)."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import DecisionTree, Experiment, ModeImputer
from repro.datasets import load_dataset
from repro.frame import train_validation_test_masks
from repro.serve import ModelRegistry, ScoringEngine

# (dataset, row-count override) — sizes keep the suite fast while covering
# every generator's schema (missing values, protected attributes, scales)
DATASETS = [
    ("adult", 1500),
    ("germancredit", None),
    ("propublica", 1200),
    ("ricci", None),
]


def _run_and_export(name, n, registry_root, seed=5):
    frame, spec = load_dataset(name, n=n)
    handler = (
        ModeImputer() if frame.missing_mask(spec.feature_columns).any() else None
    )
    experiment = Experiment(
        frame=frame,
        spec=spec,
        random_seed=seed,
        learner=DecisionTree(tuned=False),
        missing_value_handler=handler,
    )
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    registry = ModelRegistry(registry_root)
    experiment.export_pipeline(
        prepared, trained, result, registry=registry, tags=["production"]
    )
    _, _, test_mask = train_validation_test_masks(frame.num_rows, 0.7, 0.1, seed)
    return experiment, prepared, trained, result, frame.mask(test_mask)


@pytest.mark.parametrize("name,n", DATASETS, ids=[d[0] for d in DATASETS])
def test_reloaded_pipeline_byte_identical(tmp_path, name, n):
    root = str(tmp_path / "registry")
    experiment, prepared, trained, result, raw_test = _run_and_export(name, n, root)

    # a brand-new registry object: everything comes off disk
    engine = ScoringEngine(ModelRegistry(root).load_pipeline("production"))
    batch = engine.score_frame(raw_test)

    model, post = trained.models[result.best_index]
    expected = post.apply(
        experiment._predict(model, prepared.test_data_eval, prepared.test_data)
    )
    assert np.array_equal(batch.labels, expected.labels)
    if expected.scores is not None:
        assert np.array_equal(batch.scores, expected.scores)

    # fairness metrics agree exactly too (NaN-tolerant comparison)
    metrics = engine.evaluate_frame(raw_test)
    for key, value in result.test_metrics.items():
        got = metrics[key]
        assert got == value or (got != got and value != value), key


def test_fresh_process_verification_via_cli(tmp_path):
    """The CI smoke flow: export here, verify byte-identity in a new python."""
    root = str(tmp_path / "registry")
    _run_and_export("germancredit", None, root)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "score",
            "--registry",
            root,
            "--model",
            "production",
            "--dataset",
            "germancredit",
            "--verify",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "byte-identically" in completed.stdout


def test_grid_export_publishes_best_run(tmp_path):
    from repro.core import GridSpec, run_grid

    frame, spec = load_dataset("germancredit")
    grid = GridSpec(
        seeds=[0, 1],
        learners=[lambda: DecisionTree(tuned=False)],
    )
    root = str(tmp_path / "registry")
    results = run_grid(
        (frame, spec), grid, export=root, export_tags=["production"]
    )
    registry = ModelRegistry(root)
    record = registry.get_record("production")
    accuracies = [
        r.best_candidate.validation_metrics["overall__accuracy"] for r in results
    ]
    best = results[int(np.argmax(accuracies))]
    assert record["run_key"] == best.run_key
    assert record["metrics"]["test"] == best.test_metrics

    # the exported pipeline reproduces the winning run's test predictions
    engine = ScoringEngine(registry.load_pipeline("production"))
    _, _, test_mask = train_validation_test_masks(
        frame.num_rows, 0.7, 0.1, best.random_seed
    )
    metrics = engine.evaluate_frame(frame.mask(test_mask))
    for key, value in best.test_metrics.items():
        got = metrics[key]
        assert got == value or (got != got and value != value), key

"""End-to-end integration tests: datasets → lifecycle → figures.

These run miniature versions of the paper's studies and assert both the
plumbing (every combination executes, results are well-formed) and the
headline shapes on small budgets where they are stable.
"""

import numpy as np
import pytest

from repro.analysis import (
    figure2_series,
    figure3_series,
    figure4_series,
    figure5_series,
    render_figure2,
    render_figure3,
)
from repro.core import (
    CalibratedEqOddsPostProcessor,
    CompleteCaseAnalysis,
    DIRemover,
    DatawigImputer,
    DecisionTree,
    Experiment,
    GridSpec,
    LogisticRegression,
    ModeImputer,
    NoIntervention,
    RejectOptionPostProcessor,
    ReweighingPreProcessor,
    run_grid,
)
from repro.datasets import load_dataset
from repro.learn import NoOpScaler, StandardScaler

LR_FAST = lambda: LogisticRegression(tuned=False)
LR_SMALL = lambda: LogisticRegression(
    tuned=True, param_grid={"penalty": ["l2"], "alpha": [0.001, 0.01]}, cv=3
)
DT_FAST = lambda: DecisionTree(tuned=False)


class TestEveryDatasetRuns:
    @pytest.mark.parametrize(
        "name,size",
        [("germancredit", None), ("ricci", None), ("propublica", 1500), ("payment", 1200)],
    )
    def test_lifecycle_on_each_complete_or_imputable_dataset(self, name, size):
        frame, spec = load_dataset(name, n=size)
        handler = (
            DatawigImputer() if frame.missing_mask(spec.feature_columns).any() else None
        )
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LR_FAST(),
            missing_value_handler=handler,
        ).run()
        assert 0.0 <= result.test_metrics["overall__accuracy"] <= 1.0

    def test_adult_with_each_missing_strategy(self):
        frame, spec = load_dataset("adult", n=2500)
        for handler in (CompleteCaseAnalysis(), ModeImputer(), DatawigImputer()):
            result = Experiment(
                frame,
                spec,
                random_seed=1,
                learner=LR_FAST(),
                missing_value_handler=handler,
            ).run()
            assert result.test_metrics["overall__accuracy"] > 0.6


class TestInterventionMatrix:
    """Every intervention family × both baseline learners executes."""

    @pytest.mark.parametrize(
        "intervention",
        [
            NoIntervention,
            ReweighingPreProcessor,
            lambda: DIRemover(0.5),
            lambda: DIRemover(1.0),
            lambda: RejectOptionPostProcessor(num_class_thresh=8, num_ROC_margin=8),
            lambda: CalibratedEqOddsPostProcessor(),
        ],
        ids=["none", "reweighing", "di-0.5", "di-1.0", "reject", "cal-eq-odds"],
    )
    @pytest.mark.parametrize("learner", [LR_FAST, DT_FAST], ids=["lr", "dt"])
    def test_combination_runs(self, intervention, learner):
        grid = GridSpec(seeds=[0], learners=[learner], interventions=[intervention])
        results = run_grid("germancredit", grid)
        assert len(results) == 1
        assert np.isfinite(results[0].test_metrics["overall__accuracy"])


class TestFigurePipelines:
    def test_figure2_pipeline_structure(self):
        grid = GridSpec(
            seeds=[0, 1],
            learners=[LR_FAST, LR_SMALL],
            interventions=[NoIntervention, lambda: DIRemover(0.5)],
        )
        results = run_grid("germancredit", grid)
        panels = figure2_series(results)
        assert ("LogisticRegression", "no intervention", "DI") in panels
        assert ("LogisticRegression", "DIRemover(0.5)", "FNRD") in panels
        text = render_figure2(panels)
        assert "var_ratio" in text

    def test_figure3_pipeline_reproduces_scaling_failure(self):
        grid = GridSpec(
            seeds=[0, 1, 2, 3],
            learners=[LR_SMALL, DT_FAST],
            scalers=[lambda: StandardScaler(), lambda: NoOpScaler()],
        )
        results = run_grid("ricci", grid)
        panels = figure3_series(results)
        lr = panels[("LogisticRegression", "no intervention")]["summary"]
        dt = panels[("DecisionTree", "no intervention")]["summary"]
        # the paper's Figure 3 shape: unscaled LR visibly degrades, trees don't
        assert lr["unscaled_accuracy"]["mean"] < lr["scaled_accuracy"]["mean"]
        assert lr["unscaled_failure_rate"] > 0.0
        assert abs(dt["unscaled_accuracy"]["mean"] - dt["scaled_accuracy"]["mean"]) < 0.1
        assert "fail_rate" in render_figure3(panels)

    def test_figure4_pipeline_imputed_records_classified(self):
        grid = GridSpec(
            seeds=[0, 1],
            learners=[LR_FAST],
            missing_value_handlers=[lambda: ModeImputer(), lambda: DatawigImputer()],
        )
        results = run_grid("adult", grid, dataset_size=2500)
        panels = figure4_series(results)
        assert len(panels) == 2  # one per strategy
        for panel in panels.values():
            assert panel["summary"]["imputed_accuracy"]["count"] == 2
            # imputed records are classifiable at all (the paper's headline)
            assert panel["summary"]["imputed_accuracy"]["mean"] > 0.6

    def test_figure5_pipeline_conditions_present(self):
        grid = GridSpec(
            seeds=[0],
            learners=[LR_FAST],
            missing_value_handlers=[
                lambda: CompleteCaseAnalysis(),
                lambda: DatawigImputer(),
            ],
        )
        results = run_grid("adult", grid, dataset_size=2500)
        panels = figure5_series(results)
        panel = panels[("LogisticRegression", "no intervention")]
        assert len(panel["complete case"]["accuracy"]) == 1
        assert len(panel["imputed"]["accuracy"]) == 1


class TestGridReproducibility:
    def test_same_grid_same_results(self):
        grid = GridSpec(
            seeds=[4, 5],
            learners=[LR_FAST],
            interventions=[NoIntervention, ReweighingPreProcessor],
        )
        a = run_grid("germancredit", grid)
        b = run_grid("germancredit", grid)
        assert [r.to_json() for r in a] == [r.to_json() for r in b]

"""Million-row scenarios: out-of-core ingestion and histogram fits at scale.

These are the slow-marked acceptance tests for the chunked frame layer
and the histogram tree backend (run with ``pytest -m slow``; tier-1
excludes them via the pytest.ini addopts):

* a CSV far larger than the chunk budget spills through
  ``read_csv_chunked`` + ``FrameStoreWriter`` with per-column bytes equal
  to a whole-file ``read_csv``, while the spilling process's peak RSS
  stays well below the whole-file reader's;
* ``synthesize(..., 1_000_000, seed=7)`` is deterministic and preserves
  the per-group label marginals within 0.5%;
* at a million rows the histogram backend both beats the exact presort
  backend and — with every feature under 256 distinct values and unit
  weights — still produces the node-for-node identical tree.
"""

import os
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

import repro
from repro.datasets import group_label_marginals, synthesize
from repro.frame import read_csv, spill_csv, write_csv
from repro.learn import DecisionTreeClassifier

from ..learn.test_splitter_golden import tree_signature

pytestmark = pytest.mark.slow

# repro is a namespace package (no top-level __init__), so locate the
# src dir from its search path rather than a __file__ it doesn't have
SRC_DIR = os.path.dirname(os.path.abspath(list(repro.__path__)[0]))


def synth_csv(tmp_path, n_rows, seed=7):
    frame, _ = synthesize("propublica", n_rows, seed=seed)
    path = os.path.join(tmp_path, f"synth_{n_rows}.csv")
    write_csv(frame, path)
    return path


def peak_rss_kb(script, *argv):
    """Run a python snippet in a fresh process, return its peak RSS in KB.

    Reads VmHWM from /proc/self/status rather than ru_maxrss: on Linux
    ru_maxrss survives execve, so a child forked from a large pytest
    parent would inherit the parent's peak and drown the signal. VmHWM
    lives on the mm, which exec replaces, so it measures only the child.
    """
    code = textwrap.dedent(script) + textwrap.dedent(
        """
        import sys
        try:
            with open("/proc/self/status") as status:
                peak = next(
                    int(line.split()[1])
                    for line in status
                    if line.startswith("VmHWM:")
                )
        except (OSError, StopIteration):
            import resource
            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        sys.stdout.write(str(peak))
        """
    )
    result = subprocess.run(
        [sys.executable, "-c", code, *argv],
        env={**os.environ, "PYTHONPATH": SRC_DIR},
        capture_output=True,
        text=True,
        check=True,
    )
    return int(result.stdout.strip().splitlines()[-1])


class TestOutOfCoreSpill:
    def test_spill_round_trip_at_scale(self, tmp_path):
        path = synth_csv(tmp_path, 400_000)
        store = spill_csv(
            path, os.path.join(tmp_path, "store"), chunk_rows=50_000
        )
        whole = read_csv(path)
        assert store.n_rows == whole.num_rows == 400_000
        for name in whole.columns:
            a, b = whole.col(name), store.column(name)
            assert a.kind == b.kind
            if a.is_numeric:
                assert np.asarray(b.values).tobytes() == a.values.tobytes()
            else:
                assert list(b.categories) == list(a.categories)
                assert np.asarray(b.codes).tobytes() == a.codes.tobytes()

    def test_chunked_spill_bounds_peak_rss(self, tmp_path):
        path = synth_csv(tmp_path, 600_000)
        chunked = peak_rss_kb(
            """
            import sys
            from repro.frame import spill_csv
            spill_csv(sys.argv[1], sys.argv[2], chunk_rows=20_000)
            """,
            path,
            os.path.join(tmp_path, "store"),
        )
        whole = peak_rss_kb(
            """
            import sys
            from repro.frame import read_csv
            read_csv(sys.argv[1])
            """,
            path,
        )
        # the chunked spiller only ever materializes one 20k-row batch of
        # python strings; the whole-file reader holds all 600k rows at once
        assert chunked < 0.75 * whole, (chunked, whole)


class TestMillionRowSynthesis:
    def test_acceptance_criterion_verbatim(self):
        # repro datasets synth --rows 1000000 --seed 7: deterministic and
        # per-group label marginals within 0.5% of the source
        frame, spec = synthesize("propublica", 1_000_000, seed=7)
        again, _ = synthesize("propublica", 1_000_000, seed=7)
        assert frame.equals(again)
        del again
        from repro.datasets import load_dataset

        base, _ = load_dataset("propublica")
        source = group_label_marginals(base, spec)
        scaled = group_label_marginals(frame, spec)
        for group, stats in source.items():
            for key, value in stats.items():
                assert scaled[group][key] == pytest.approx(
                    value, abs=0.005
                ), (group, key)


class TestHistogramAtScale:
    def test_million_row_fit_faster_and_identical_in_regime(self):
        rng = np.random.default_rng(42)
        n, cards = 1_000_000, [2, 3, 5, 8, 13, 40, 64, 100, 180, 256]
        X = np.column_stack([
            rng.integers(0, c, n).astype(np.float64) for c in cards
        ])
        y = ((X[:, 0] + X[:, 5] / 40.0 + rng.normal(size=n)) > 1.0).astype(int)

        start = time.perf_counter()
        histogram = DecisionTreeClassifier(max_depth=8).fit(
            X, y, presort="histogram"
        )
        histogram_s = time.perf_counter() - start

        start = time.perf_counter()
        exact = DecisionTreeClassifier(max_depth=8).fit(X, y, presort="exact")
        exact_s = time.perf_counter() - start

        # every feature has <= 256 distinct values and weights are unit,
        # so the histogram tree must be node-for-node identical
        assert tree_signature(histogram) == tree_signature(exact)
        # the benchmark floor is 3x; leave headroom against CI noise here
        assert exact_s / histogram_s > 2.0, (exact_s, histogram_s)

    def test_auto_dispatch_crosses_the_threshold_at_scale(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 10, size=(100_000, 4)).astype(np.float64)
        y = rng.integers(0, 2, 100_000)
        auto = DecisionTreeClassifier(max_depth=5).fit(X, y, presort="auto")
        forced = DecisionTreeClassifier(max_depth=5).fit(
            X, y, presort="histogram"
        )
        assert tree_signature(auto) == tree_signature(forced)

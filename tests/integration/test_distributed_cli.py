"""Distributed grid CLI, end to end with real processes and a real kill.

A coordinator (``grid --distributed --jobs 0``) serves two external
``grid-worker`` processes; one is SIGKILLed mid-lease. The coordinator
must re-queue the dead worker's keys, the survivor must finish the grid,
and the final store must match a serial CLI run byte for byte (modulo
row order). This is the failure model the executor promises.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import repro

SRC_DIR = os.path.dirname(list(repro.__path__)[0])

GRID_ARGS = [
    "--dataset", "germancredit",
    "--size", "2000",
    "--seeds", "2",
    "--learner", "lr",
    "--no-tuning",
    "--interventions", "none", "di-remover-0.5",
]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    return env


def _spawn(arguments, cwd):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        cwd=str(cwd),
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class StreamWatcher:
    """Pump a subprocess stream in a thread; wait for marker lines."""

    def __init__(self, stream):
        self._lines = []
        self._lock = threading.Lock()
        thread = threading.Thread(target=self._pump, args=(stream,), daemon=True)
        thread.start()

    def _pump(self, stream):
        for line in stream:
            with self._lock:
                self._lines.append(line)

    def wait_for(self, needle, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                for line in self._lines:
                    if needle in line:
                        return line
            time.sleep(0.05)
        raise AssertionError(f"never saw {needle!r} in:\n{self.text()}")

    def text(self):
        with self._lock:
            return "".join(self._lines)


def _keyed_lines(path):
    with open(path) as handle:
        return {json.loads(line)["run_key"]: line for line in handle}


def test_sigkilled_worker_requeues_and_store_matches_serial(tmp_path):
    coordinator = _spawn(
        [
            "grid", *GRID_ARGS,
            "--output", "dist.jsonl",
            "--distributed",
            "--jobs", "0",
            "--bind", "127.0.0.1:0",
            "--lease-seconds", "5",
        ],
        tmp_path,
    )
    workers = []
    try:
        coordinator_log = StreamWatcher(coordinator.stderr)
        listening = coordinator_log.wait_for("coordinator listening on ")
        address = listening.rsplit(" ", 1)[-1].strip()

        victim = _spawn(
            ["grid-worker", "--connect", address, "--worker-id", "w1"], tmp_path
        )
        workers.append(victim)
        victim_log = StreamWatcher(victim.stderr)
        # the worker prints its lease event before executing the group:
        # killing now guarantees undelivered keys on an granted lease
        victim_log.wait_for("[w1] lease")
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=60)

        requeue_line = coordinator_log.wait_for("requeued")
        assert re.search(r"requeued \d+ keys from lease \d+", requeue_line)

        survivor = _spawn(
            ["grid-worker", "--connect", address, "--worker-id", "w2"], tmp_path
        )
        workers.append(survivor)
        assert coordinator.wait(timeout=480) == 0
        assert survivor.wait(timeout=60) == 0

        log = coordinator_log.text()
        assert "worker w1 registered" in log
        assert "worker w2 registered" in log
        summary = re.search(
            r"distributed summary: (\d+) worker\(s\) seen, (\d+)/(\d+) runs "
            r"merged, (\d+) keys re-queued",
            log,
        )
        assert summary, log
        seen, merged, total, requeued = map(int, summary.groups())
        assert seen == 2
        assert merged == total == 4
        assert requeued >= 1
    finally:
        for process in [coordinator, *workers]:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)

    serial = _spawn(["grid", *GRID_ARGS, "--output", "serial.jsonl"], tmp_path)
    _, serial_err = serial.communicate(timeout=480)
    assert serial.returncode == 0, serial_err

    distributed_lines = _keyed_lines(tmp_path / "dist.jsonl")
    serial_lines = _keyed_lines(tmp_path / "serial.jsonl")
    assert set(distributed_lines) == set(serial_lines)
    assert all(
        distributed_lines[key] == serial_lines[key] for key in serial_lines
    )

"""Edge-case and failure-injection tests across module boundaries.

These exercise the degenerate situations a long-running study will
eventually hit — empty groups in a split, all-missing columns, single-class
folds, unseen categories at test time — and pin down that the stack either
produces NaN metrics gracefully or fails with an actionable message.
"""

import numpy as np
import pytest

from repro.core import (
    DIRemover,
    DatawigImputer,
    Experiment,
    Featurizer,
    LogisticRegression,
    ModeImputer,
    ReweighingPreProcessor,
)
from repro.datasets import DatasetSpec, ProtectedAttribute, load_dataset
from repro.fairness import (
    BinaryLabelDataset,
    ClassificationMetric,
    Reweighing,
)
from repro.frame import DataFrame
from repro.learn import GridSearchCV, SGDClassifier, StandardScaler


def _tiny_spec():
    return DatasetSpec(
        name="tiny",
        label_column="label",
        favorable_value="yes",
        numeric_features=("x",),
        categorical_features=("color",),
        protected_attributes=(
            ProtectedAttribute(column="group", privileged_values=("p",)),
        ),
    )


def _tiny_frame(n=120, seed=0, priv_fraction=0.5):
    rng = np.random.default_rng(seed)
    group = np.where(rng.random(n) < priv_fraction, "p", "u")
    x = rng.normal(loc=(group == "p") * 1.0, scale=1.0)
    label = np.where(x + rng.normal(0, 0.5, n) > 0.5, "yes", "no")
    color = rng.choice(["red", "blue"], size=n)
    return DataFrame.from_dict(
        {"x": x, "color": color, "group": group, "label": label}
    )


class TestEmptyGroupHandling:
    def test_metrics_with_empty_unprivileged_group_are_nan_not_crash(self):
        ds = BinaryLabelDataset(
            features=np.random.default_rng(0).normal(size=(20, 2)),
            labels=np.tile([1.0, 0.0], 10),
            protected_attributes=np.ones(20),  # everyone privileged
            protected_attribute_names=["sex"],
        )
        pred = ds.with_predictions(labels=ds.labels)
        metric = ClassificationMetric(ds, pred, [{"sex": 0.0}], [{"sex": 1.0}])
        measures = metric.performance_measures(privileged=False)
        assert np.isnan(measures["accuracy"])
        bundle = metric.all_metrics()
        assert np.isnan(bundle["group__statistical_parity_difference"])

    def test_experiment_with_vanishing_group_in_test_split(self):
        # unprivileged group so rare the 20% test split may not contain it
        frame = _tiny_frame(n=80, priv_fraction=0.97, seed=3)
        spec = _tiny_spec()
        result = Experiment(
            frame, spec, random_seed=0, learner=LogisticRegression(tuned=False)
        ).run()
        assert "overall__accuracy" in result.test_metrics  # run completes


class TestReweighingDegenerate:
    def test_empty_cell_gets_neutral_factor(self):
        # no unprivileged positives at all
        ds = BinaryLabelDataset(
            features=np.zeros((8, 1)),
            labels=np.array([1, 1, 1, 1, 0, 0, 0, 0], dtype=float),
            protected_attributes=np.array([1, 1, 1, 1, 1, 0, 0, 0], dtype=float),
            protected_attribute_names=["sex"],
        )
        rw = Reweighing([{"sex": 0.0}], [{"sex": 1.0}]).fit(ds)
        assert rw.factors_[(False, True)] == 1.0  # empty cell: neutral
        out = rw.transform(ds)
        assert np.isfinite(out.instance_weights).all()


class TestDIRemoverDegenerate:
    def test_unseen_group_value_keeps_original_features(self):
        frame = _tiny_frame(n=200, seed=1)
        spec = _tiny_spec()
        featurizer = Featurizer(spec, StandardScaler()).fit(frame)
        data = featurizer.transform(frame)
        remover = DIRemover(repair_level=1.0).fit(
            data, featurizer.privileged_groups, featurizer.unprivileged_groups, 0
        )
        # fabricate rows whose protected value was never seen during fit
        alien = data.copy()
        alien.protected_attributes[:, 0] = 7.0
        out = remover.transform_eval(alien)
        assert np.allclose(out.features, alien.features)

    def test_constant_feature_survives_repair(self):
        rng = np.random.default_rng(0)
        sex = (rng.random(100) < 0.5).astype(float)
        ds = BinaryLabelDataset(
            features=np.column_stack([np.full(100, 3.0), rng.normal(size=100)]),
            labels=(rng.random(100) < 0.5).astype(float),
            protected_attributes=sex,
            protected_attribute_names=["sex"],
        )
        from repro.fairness import DisparateImpactRemover

        out = DisparateImpactRemover(repair_level=1.0).fit_transform(ds)
        assert np.allclose(out.features[:, 0], 3.0)


class TestImputerDegenerate:
    def test_all_missing_column_falls_back(self):
        frame = DataFrame.from_dict(
            {
                "a": [None] * 10,
                "b": ["x", "y"] * 5,
                "label": ["yes", "no"] * 5,
            },
            kinds={"a": "numeric"},
        )
        imputer = DatawigImputer().fit(frame, ["a", "b"], seed=0)
        out = imputer.handle_missing(frame)
        assert out.col("a").num_missing() == 0

    def test_single_observed_category_falls_back_to_mode(self):
        frame = DataFrame.from_dict(
            {
                "a": ["only", None, "only", None, "only", "only"],
                "b": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                "label": ["yes", "no"] * 3,
            }
        )
        imputer = DatawigImputer(target_columns=["a"]).fit(frame, ["a", "b"], seed=0)
        out = imputer.handle_missing(frame)
        assert set(out["a"]) == {"only"}

    def test_mode_imputer_all_missing_numeric_uses_zero(self):
        frame = DataFrame.from_dict(
            {"a": [None, None], "label": ["yes", "no"]}, kinds={"a": "numeric"}
        )
        imputer = ModeImputer().fit(frame, ["a"], seed=0)
        out = imputer.handle_missing(frame)
        assert (out["a"] == 0.0).all()


class TestUnseenCategoriesAtTestTime:
    def test_lifecycle_handles_novel_test_category(self):
        # training split lacks a category that appears only in later rows;
        # the reserved unseen dimension must absorb it
        frame = _tiny_frame(n=200, seed=5)
        rare = frame.with_values(
            "color", ["green" if i >= 190 else c for i, c in enumerate(frame["color"])]
        )
        result = Experiment(
            rare, _tiny_spec(), random_seed=0, learner=LogisticRegression(tuned=False)
        ).run()
        assert np.isfinite(result.test_metrics["overall__accuracy"])


class TestGridSearchDegenerate:
    def test_constant_fold_scores_still_select_a_candidate(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 2))
        y = np.array([0, 1] * 15)
        search = GridSearchCV(
            SGDClassifier(max_iter=1, random_state=0),
            {"alpha": [0.1, 0.2]},
            cv=3,
            random_state=0,
        ).fit(X, y)
        assert search.best_params_["alpha"] in (0.1, 0.2)


class TestSpecValidationErrors:
    def test_non_binary_label_rejected(self):
        frame = _tiny_frame().with_values(
            "label", ["yes", "no", "maybe"] * 40
        )
        with pytest.raises(ValueError, match="binary"):
            _tiny_spec().validate(frame)

    def test_missing_favorable_value_rejected(self):
        frame = _tiny_frame().with_values("label", ["a", "b"] * 60)
        with pytest.raises(ValueError, match="favorable"):
            _tiny_spec().validate(frame)

    def test_overlapping_feature_lists_rejected(self):
        with pytest.raises(ValueError, match="both"):
            DatasetSpec(
                name="bad",
                label_column="label",
                favorable_value="yes",
                numeric_features=("x",),
                categorical_features=("x",),
                protected_attributes=(
                    ProtectedAttribute(column="g", privileged_values=("p",)),
                ),
            )

    def test_label_as_feature_rejected(self):
        with pytest.raises(ValueError, match="label column"):
            DatasetSpec(
                name="bad",
                label_column="x",
                favorable_value="yes",
                numeric_features=("x",),
                categorical_features=(),
                protected_attributes=(
                    ProtectedAttribute(column="g", privileged_values=("p",)),
                ),
            )


class TestProtectedAttributeOverride:
    def test_adult_sex_instead_of_race(self):
        frame, spec = load_dataset("adult", n=2000)
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(tuned=False),
            missing_value_handler=ModeImputer(),
            protected_attribute="sex",
        ).run()
        assert result.components["protected_attribute"] == "sex"

    def test_unknown_protected_attribute_rejected(self):
        frame, spec = load_dataset("ricci")
        with pytest.raises(KeyError):
            Experiment(
                frame,
                spec,
                random_seed=0,
                learner=LogisticRegression(tuned=False),
                protected_attribute="age",
            ).run()

"""Cross-process fingerprint stability: the distributed contract.

Workers on other machines recompute ``run_key``/``prep_key`` from the
grid manifest and must land on exactly the coordinator's values. That
only holds if the fingerprints are independent of per-process state —
most notably ``PYTHONHASHSEED``, which randomizes ``str`` hashing (and
therefore any accidental reliance on set/dict iteration order).
"""

import os
import subprocess
import sys

import repro

_SCRIPT = """
from repro.core import DIRemover, GridSpec, LogisticRegression, NoIntervention

grid = GridSpec(
    seeds=[1, 2],
    learners=[lambda: LogisticRegression(tuned=False)],
    interventions=[NoIntervention, lambda: DIRemover(0.5)],
)
for config in grid.expand("germancredit"):
    print(config.run_key, config.prep_key)
"""


def _keys_under_hash_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.path.dirname(list(repro.__path__)[0])
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestFingerprintStability:
    def test_keys_identical_across_hash_seeds(self):
        baseline = _keys_under_hash_seed("0")
        assert baseline.strip(), "expansion produced no keys"
        for seed in ("1", "42"):
            assert _keys_under_hash_seed(seed) == baseline

    def test_keys_match_in_process_expansion(self):
        from repro.core import (
            DIRemover,
            GridSpec,
            LogisticRegression,
            NoIntervention,
        )

        grid = GridSpec(
            seeds=[1, 2],
            learners=[lambda: LogisticRegression(tuned=False)],
            interventions=[NoIntervention, lambda: DIRemover(0.5)],
        )
        local = "".join(
            f"{c.run_key} {c.prep_key}\n" for c in grid.expand("germancredit")
        )
        assert local == _keys_under_hash_seed("7")

"""Unit tests for the k-NN learner wrapper."""

import numpy as np
import pytest

from repro.core import Experiment, Featurizer, KNearestNeighbors
from repro.datasets import GERMANCREDIT_SPEC, load_dataset
from repro.learn import StandardScaler


@pytest.fixture(scope="module")
def annotated():
    frame, spec = load_dataset("germancredit")
    featurizer = Featurizer(spec, StandardScaler()).fit(frame)
    return featurizer.transform(frame)


class TestKNearestNeighbors:
    def test_untuned_predicts(self, annotated):
        model = KNearestNeighbors(tuned=False).fit_model(annotated, seed=0)
        predictions = model.predict(annotated.features)
        assert set(np.unique(predictions)) <= {0.0, 1.0}

    def test_tuned_selects_k(self, annotated):
        learner = KNearestNeighbors(tuned=True, neighbor_grid=[3, 11], cv=3)
        learner.fit_model(annotated, seed=0)
        assert learner.last_search_.best_params_["n_neighbors"] in (3, 11)

    def test_scores_available(self, annotated):
        model = KNearestNeighbors(tuned=False).fit_model(annotated, seed=0)
        scores = model.predict_scores(annotated.features)
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_name(self):
        assert KNearestNeighbors(tuned=False).name() == "KNearestNeighbors(default)"

    def test_in_lifecycle(self):
        frame, spec = load_dataset("germancredit")
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=KNearestNeighbors(tuned=False),
        ).run()
        assert result.test_metrics["overall__accuracy"] > 0.55

"""Unit tests for the grid runner, selectors and result records."""

import numpy as np
import pytest

from repro.core import (
    AccuracySelector,
    BestModelSelector,
    CandidateResult,
    ConstrainedSelector,
    DIRemover,
    FunctionSelector,
    GridSpec,
    LogisticRegression,
    NoIntervention,
    RejectOptionPostProcessor,
    ResultsStore,
    ReweighingPreProcessor,
    RunResult,
    results_to_rows,
    run_grid,
)
from repro.core.runner import _route_intervention
from repro.core.standard_experiments import (
    GermanCreditExperiment,
    PaymentOptionGenderExperiment,
    RicciExperiment,
)
from repro.core import DatawigImputer


class TestSelectors:
    def test_accuracy_selector(self):
        metrics = [
            {"overall__accuracy": 0.7},
            {"overall__accuracy": 0.9},
            {"overall__accuracy": 0.8},
        ]
        assert AccuracySelector().select(metrics) == 1

    def test_nan_treated_as_worst(self):
        metrics = [{"overall__accuracy": float("nan")}, {"overall__accuracy": 0.5}]
        assert AccuracySelector().select(metrics) == 1

    def test_minimize_mode(self):
        selector = BestModelSelector(metric="group__theil_index", maximize=False)
        metrics = [{"group__theil_index": 0.4}, {"group__theil_index": 0.1}]
        assert selector.select(metrics) == 1

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            AccuracySelector().select([])

    def test_constrained_prefers_feasible(self):
        selector = ConstrainedSelector(
            constraint_metric="group__disparate_impact",
            constraint_target=1.0,
            constraint_slack=0.1,
        )
        metrics = [
            {"overall__accuracy": 0.95, "group__disparate_impact": 0.5},
            {"overall__accuracy": 0.80, "group__disparate_impact": 0.95},
        ]
        assert selector.select(metrics) == 1

    def test_constrained_falls_back_to_least_violation(self):
        selector = ConstrainedSelector(constraint_slack=0.01)
        metrics = [
            {"overall__accuracy": 0.95, "group__disparate_impact": 0.5},
            {"overall__accuracy": 0.80, "group__disparate_impact": 0.9},
        ]
        assert selector.select(metrics) == 1

    def test_function_selector_validates_range(self):
        selector = FunctionSelector(lambda m: 5)
        with pytest.raises(ValueError, match="outside"):
            selector.select([{"overall__accuracy": 1.0}])


class TestResults:
    def _result(self, seed=0, accuracy=0.8):
        return RunResult(
            dataset="demo",
            random_seed=seed,
            components={"pre_processor": "NoIntervention"},
            candidates=[
                CandidateResult(
                    learner="LR",
                    validation_metrics={"overall__accuracy": accuracy},
                )
            ],
            best_index=0,
            test_metrics={"overall__accuracy": accuracy, "group__disparate_impact": 0.9},
            test_metrics_incomplete={"overall__accuracy": accuracy + 0.05},
            sizes={"train": 10},
        )

    def test_json_roundtrip_with_nan(self):
        result = self._result()
        result.test_metrics["group__false_negative_rate_ratio"] = float("nan")
        clone = RunResult.from_json(result.to_json())
        assert np.isnan(clone.test_metrics["group__false_negative_rate_ratio"])

    def test_store_append_and_load(self, tmp_path):
        store = ResultsStore(str(tmp_path / "runs.jsonl"))
        store.append(self._result(seed=1))
        store.append(self._result(seed=2))
        loaded = store.load()
        assert [r.random_seed for r in loaded] == [1, 2]

    def test_store_load_missing_file(self, tmp_path):
        assert ResultsStore(str(tmp_path / "nothing.jsonl")).load() == []

    def test_results_to_rows_flattens(self):
        rows = results_to_rows([self._result(seed=3, accuracy=0.75)])
        row = rows[0]
        assert row["seed"] == 3
        assert row["test__overall__accuracy"] == 0.75
        assert row["test_incomplete__overall__accuracy"] == 0.80
        assert row["component__pre_processor"] == "NoIntervention"
        assert row["validation_accuracy"] == 0.75


class TestRouting:
    def test_no_intervention_goes_pre(self):
        pre, post = _route_intervention(NoIntervention())
        assert isinstance(pre, NoIntervention) and post is None

    def test_preprocessor_routed(self):
        pre, post = _route_intervention(ReweighingPreProcessor())
        assert pre is not None and post is None

    def test_postprocessor_routed(self):
        pre, post = _route_intervention(
            RejectOptionPostProcessor(num_class_thresh=5, num_ROC_margin=5)
        )
        assert pre is None and post is not None

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            _route_intervention(object())


class TestRunGrid:
    def test_grid_size_and_results(self):
        grid = GridSpec(
            seeds=[1, 2],
            learners=[lambda: LogisticRegression(tuned=False)],
            interventions=[NoIntervention, lambda: DIRemover(0.5)],
        )
        assert grid.size() == 4
        results = run_grid("germancredit", grid)
        assert len(results) == 4
        pre_names = {r.components["pre_processor"] for r in results}
        assert pre_names == {"NoIntervention", "DIRemover(0.5)"}

    def test_progress_callback(self):
        calls = []
        grid = GridSpec(seeds=[1], learners=[lambda: LogisticRegression(tuned=False)])
        run_grid(
            "ricci", grid, progress=lambda done, total, result: calls.append((done, total))
        )
        assert calls == [(1, 1)]

    def test_explicit_frame_and_spec(self):
        from repro.datasets import load_dataset

        frame, spec = load_dataset("ricci")
        grid = GridSpec(seeds=[5], learners=[lambda: LogisticRegression(tuned=False)])
        results = run_grid((frame, spec), grid)
        assert results[0].dataset == "ricci"

    def test_dataset_size_override(self):
        grid = GridSpec(
            seeds=[1],
            learners=[lambda: LogisticRegression(tuned=False)],
            missing_value_handlers=[lambda: DatawigImputer()],
        )
        results = run_grid("adult", grid, dataset_size=1500)
        assert results[0].sizes["train"] == 1050


class TestStandardExperiments:
    def test_german_credit_experiment(self):
        result = GermanCreditExperiment(
            random_seed=0, learner=LogisticRegression(tuned=False)
        ).run()
        assert result.dataset == "germancredit"

    def test_ricci_experiment(self):
        result = RicciExperiment(
            random_seed=0, learner=LogisticRegression(tuned=False)
        ).run()
        assert result.dataset == "ricci"

    def test_payment_experiment_with_imputer(self):
        result = PaymentOptionGenderExperiment(
            random_seed=0,
            dataset_size=1200,
            learner=LogisticRegression(tuned=False),
            missing_value_handler=DatawigImputer(target_columns=["age"]),
        ).run()
        assert result.dataset == "payment"
        assert result.sizes["test_incomplete"] > 0

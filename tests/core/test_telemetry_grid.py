"""Telemetry through the grid engine: run manifests, byte-identity of
results with tracing on, and distributed traces stitching into one tree
whose per-stage totals reconcile with the coordinator's accounting."""

import json
import os

import pytest

from repro import telemetry
from repro.core import (
    DistributedExecutor,
    GridSpec,
    LogisticRegression,
    NoIntervention,
    ResultsStore,
    SerialExecutor,
    run_grid,
)
from repro.core.runner import manifest_path, write_run_manifest
from repro.telemetry import trace as trace_tools


def small_grid():
    return GridSpec(
        seeds=[1, 2],
        learners=[lambda: LogisticRegression(tuned=False)],
        interventions=[NoIntervention],
    )


@pytest.fixture(scope="module")
def german():
    from repro.datasets import load_dataset

    return load_dataset("germancredit")


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    telemetry.reset_for_tests()
    yield
    telemetry.reset_for_tests()


class TestRunManifest:
    def test_grid_run_writes_manifest_next_to_store(self, german, tmp_path):
        store = ResultsStore(str(tmp_path / "results.jsonl"))
        results = run_grid(german, small_grid(), results_store=store)
        path = manifest_path(store)
        assert path == str(tmp_path / "results.jsonl.manifest.json")
        with open(path) as handle:
            manifest = json.load(handle)
        assert manifest["manifest_version"] == 1
        assert manifest["dataset"] == "germancredit"
        assert manifest["executor"] == "SerialExecutor"
        assert manifest["grid_size"] == len(results) == 2
        assert manifest["run_keys"] == [r.run_key for r in results]
        assert manifest["prep_groups"] == len(manifest["prep_keys"])
        assert manifest["wall_seconds"] > 0
        assert manifest["results_path"] == "results.jsonl"
        assert manifest["telemetry"]["tracing"] is False

    def test_manifest_stage_timings_when_aggregating(self, german, tmp_path):
        telemetry.configure(aggregate=True)
        store = ResultsStore(str(tmp_path / "results.jsonl"))
        run_grid(german, small_grid(), results_store=store)
        with open(manifest_path(store)) as handle:
            manifest = json.load(handle)
        timings = manifest["stage_timings"]
        assert timings["stage.train"]["count"] == 2
        assert timings["stage.evaluate"]["count"] == 2
        assert timings["grid.run"]["count"] == 1
        assert timings["stage.train"]["total_s"] >= 0

    def test_no_manifest_without_store(self, german, tmp_path):
        run_grid(german, small_grid())
        assert not any(
            name.endswith(".manifest.json") for name in os.listdir(tmp_path)
        )

    def test_manifest_is_rewritten_whole_and_parseable(self, german, tmp_path):
        store = ResultsStore(str(tmp_path / "results.jsonl"))
        run_grid(german, small_grid(), results_store=store)
        first = json.load(open(manifest_path(store)))
        run_grid(german, small_grid(), results_store=store, resume=True)
        second = json.load(open(manifest_path(store)))
        assert second["run_keys"] == first["run_keys"]
        # no temp files left behind by the atomic write
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []


class TestTracedGridIdentity:
    def test_results_identical_with_tracing_on(self, german, tmp_path):
        baseline = run_grid(german, small_grid(), executor=SerialExecutor())
        telemetry.reset_for_tests()
        telemetry.configure(trace_dir=str(tmp_path / "trace"))
        traced = run_grid(german, small_grid(), executor=SerialExecutor())
        assert [r.to_json() for r in traced] == [
            r.to_json() for r in baseline
        ]

    def test_serial_trace_is_one_tree_with_full_stage_coverage(
        self, german, tmp_path
    ):
        telemetry.configure(trace_dir=str(tmp_path / "trace"))
        run_grid(german, small_grid(), executor=SerialExecutor())
        summary = trace_tools.summarize(str(tmp_path / "trace"))
        assert trace_tools.check_single_tree(summary) is None
        totals = summary["stage_totals"]
        assert totals["grid.run"]["count"] == 1
        assert totals["stage.train"]["count"] == 2
        assert totals["stage.evaluate"]["count"] == 2
        assert totals["stage.prepare"]["count"] == 2
        # the root bounds every stage underneath it
        assert totals["grid.run"]["max_s"] >= totals["stage.train"]["max_s"]


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires os.fork")
class TestDistributedTraceStitching:
    def test_two_worker_trace_reconciles_with_coordinator_stats(
        self, german, tmp_path
    ):
        telemetry.configure(trace_dir=str(tmp_path / "trace"))
        executor = DistributedExecutor(workers=2, lease_seconds=10.0)
        results = run_grid(german, small_grid(), executor=executor)
        assert len(results) == 2

        summary = trace_tools.summarize(str(tmp_path / "trace"))
        # the acceptance bar: every process's spans stitch into exactly
        # one tree rooted at the coordinator's grid.run span
        assert trace_tools.check_single_tree(summary) is None
        assert len(summary["processes"]) >= 2

        stats = executor.stats
        totals = summary["stage_totals"]
        assert totals["stage.train"]["count"] == stats["completed"] == 2
        assert (
            totals["distributed.lease"]["count"]
            == sum(w["groups"] for w in stats["workers"].values())
        )
        assert summary["event_counts"]["distributed.complete"] == 2

    def test_distributed_manifest_records_lease_stats(self, german, tmp_path):
        store = ResultsStore(str(tmp_path / "results.jsonl"))
        executor = DistributedExecutor(workers=2, lease_seconds=10.0)
        run_grid(german, small_grid(), executor=executor, results_store=store)
        with open(manifest_path(store)) as handle:
            manifest = json.load(handle)
        assert manifest["executor"] == "DistributedExecutor"
        assert manifest["distributed"]["completed"] == 2
        assert manifest["distributed"]["total"] == 2

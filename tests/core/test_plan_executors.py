"""Tests for the staged execution engine: plan layer + executor backends."""

import numpy as np
import pytest

from repro.core import (
    CalibratedEqOddsPostProcessor,
    DIRemover,
    GridSpec,
    LogisticRegression,
    NoIntervention,
    ParallelExecutor,
    PostProcessor,
    RejectOptionPostProcessor,
    ResultsStore,
    SerialExecutor,
    component_fingerprint,
    run_grid,
)
from repro.core.executors import ExecutionPlan, build_experiment
from repro.core.experiment import Experiment
from repro.datasets import load_dataset


def small_grid():
    return GridSpec(
        seeds=[1, 2],
        learners=[lambda: LogisticRegression(tuned=False)],
        interventions=[NoIntervention, lambda: DIRemover(0.5)],
    )


@pytest.fixture(scope="module")
def german():
    return load_dataset("germancredit")


@pytest.fixture(scope="module")
def serial_results(german):
    return run_grid(german, small_grid(), executor=SerialExecutor())


class TestPlanExpansion:
    def test_expand_covers_grid_in_order(self):
        grid = small_grid()
        configs = grid.expand("germancredit")
        assert len(configs) == grid.size() == 4
        assert [c.index for c in configs] == [0, 1, 2, 3]
        # product order: seeds outermost, interventions inner
        assert [c.random_seed for c in configs] == [1, 1, 2, 2]

    def test_run_keys_unique_and_deterministic(self):
        first = small_grid().expand("germancredit")
        second = small_grid().expand("germancredit")
        assert len({c.run_key for c in first}) == 4
        assert [c.run_key for c in first] == [c.run_key for c in second]

    def test_prep_key_shared_across_interventions_not_seeds(self):
        configs = small_grid().expand("germancredit")
        by_seed = {}
        for config in configs:
            by_seed.setdefault(config.random_seed, set()).add(config.prep_key)
        # both interventions of one seed share preparation...
        assert all(len(keys) == 1 for keys in by_seed.values())
        # ...but different seeds never do
        assert len({k for keys in by_seed.values() for k in keys}) == 2

    def test_run_key_sensitive_to_component_parameters(self):
        a = GridSpec(
            seeds=[0],
            learners=[lambda: LogisticRegression(tuned=False)],
            interventions=[lambda: DIRemover(0.5)],
        ).expand("germancredit")
        b = GridSpec(
            seeds=[0],
            learners=[lambda: LogisticRegression(tuned=False)],
            interventions=[lambda: DIRemover(1.0)],
        ).expand("germancredit")
        assert a[0].run_key != b[0].run_key

    def test_run_key_sensitive_to_dataset_fingerprint(self, german):
        frame, spec = german
        grid = small_grid()
        full = ExecutionPlan.for_grid(frame, spec, grid)
        half = np.arange(frame.num_rows) < frame.num_rows // 2
        truncated = ExecutionPlan.for_grid(frame.mask(half), spec, grid)
        assert full.configs[0].run_key != truncated.configs[0].run_key

    def test_default_components_fingerprint_like_explicit_ones(self):
        from repro.learn import StandardScaler

        implicit = GridSpec(
            seeds=[0], learners=[lambda: LogisticRegression(tuned=False)]
        ).expand("germancredit")
        explicit = GridSpec(
            seeds=[0],
            learners=[lambda: LogisticRegression(tuned=False)],
            scalers=[StandardScaler],
        ).expand("germancredit")
        assert implicit[0].run_key == explicit[0].run_key
        assert implicit[0].prep_key == explicit[0].prep_key

    def test_run_key_sensitive_to_dataset_and_protected(self):
        grid = small_grid()
        assert (
            grid.expand("germancredit")[0].run_key != grid.expand("ricci")[0].run_key
        )
        assert (
            grid.expand("germancredit", "sex")[0].run_key
            != grid.expand("germancredit", "age")[0].run_key
        )

    def test_config_is_serializable(self):
        import json
        import pickle

        config = small_grid().expand("germancredit")[0]
        assert pickle.loads(pickle.dumps(config)) == config
        assert json.loads(json.dumps(config.to_dict()))["run_key"] == config.run_key

    def test_config_wire_roundtrip_is_lossless(self):
        import json

        from repro.core.plan import RunConfig

        for config in small_grid().expand("germancredit"):
            wire = json.loads(json.dumps(config.to_dict()))
            assert RunConfig.from_dict(wire) == config

    def test_build_experiment_matches_config(self, german):
        frame, spec = german
        plan = ExecutionPlan.for_grid(frame, spec, small_grid())
        experiment = build_experiment(plan, plan.configs[1])
        assert experiment.random_seed == 1
        assert experiment.pre_processor.name() == "DIRemover(0.5)"


class TestExecutorEquivalence:
    def test_parallel_identical_to_serial(self, german, serial_results):
        parallel = run_grid(german, small_grid(), executor=ParallelExecutor(jobs=4))
        assert [r.run_key for r in parallel] == [r.run_key for r in serial_results]
        assert [r.to_json() for r in parallel] == [
            r.to_json() for r in serial_results
        ]

    def test_cache_identical_to_fresh_preparation(self, german, serial_results):
        fresh = run_grid(
            german, small_grid(), executor=SerialExecutor(share_preparation=False)
        )
        assert [r.to_json() for r in fresh] == [r.to_json() for r in serial_results]

    def test_engine_identical_to_direct_experiment_run(self, german, serial_results):
        frame, spec = german
        direct = Experiment(
            frame,
            spec,
            random_seed=2,
            learner=LogisticRegression(tuned=False),
            pre_processor=DIRemover(0.5),
        ).run()
        engine = serial_results[3]
        assert engine.random_seed == 2
        assert engine.test_metrics == direct.test_metrics
        assert engine.candidates[0].validation_metrics == (
            direct.candidates[0].validation_metrics
        )

    def test_results_carry_run_keys(self, serial_results):
        keys = [r.run_key for r in serial_results]
        assert all(keys) and len(set(keys)) == 4

    def test_jobs_one_runs_in_process(self, german, serial_results):
        one = run_grid(german, small_grid(), jobs=1)
        assert [r.to_json() for r in one] == [r.to_json() for r in serial_results]


class TestResumeAndStore:
    def test_extend_writes_batch(self, tmp_path, serial_results):
        store = ResultsStore(str(tmp_path / "batch.jsonl"))
        store.extend(serial_results)
        loaded = store.load()
        assert [r.to_json() for r in loaded] == [r.to_json() for r in serial_results]
        assert store.run_keys() == {r.run_key for r in serial_results}

    def test_extend_empty_writes_nothing(self, tmp_path):
        store = ResultsStore(str(tmp_path / "empty.jsonl"))
        store.extend([])
        assert store.load() == []

    def test_grid_run_populates_store(self, german, tmp_path, serial_results):
        store = ResultsStore(str(tmp_path / "grid.jsonl"))
        run_grid(german, small_grid(), results_store=store)
        assert store.run_keys() == {r.run_key for r in serial_results}

    def test_resume_skips_completed_without_recompute(
        self, german, tmp_path, serial_results, monkeypatch
    ):
        store = ResultsStore(str(tmp_path / "complete.jsonl"))
        store.extend(serial_results)

        def explode(self, prepared):
            raise AssertionError("resume must not retrain completed runs")

        monkeypatch.setattr(Experiment, "train_candidates", explode)
        resumed = run_grid(german, small_grid(), results_store=store, resume=True)
        assert [r.to_json() for r in resumed] == [
            r.to_json() for r in serial_results
        ]
        # nothing new was appended
        assert len(store.load()) == len(serial_results)

    def test_partial_resume_recomputes_only_missing(
        self, german, tmp_path, serial_results, monkeypatch
    ):
        store = ResultsStore(str(tmp_path / "partial.jsonl"))
        store.extend(serial_results[:2])

        trained = []
        original = Experiment.train_candidates

        def counting(self, prepared):
            trained.append(self.random_seed)
            return original(self, prepared)

        monkeypatch.setattr(Experiment, "train_candidates", counting)
        resumed = run_grid(german, small_grid(), results_store=store, resume=True)
        assert len(trained) == 2  # only the two missing seed-2 runs
        assert [r.to_json() for r in resumed] == [
            r.to_json() for r in serial_results
        ]
        assert len(store.load()) == 4

    def test_crash_mid_group_persists_completed_runs(
        self, german, tmp_path, monkeypatch
    ):
        store = ResultsStore(str(tmp_path / "crash.jsonl"))
        original = Experiment.train_candidates
        executed = []

        def crash_on_third(self, prepared):
            if len(executed) == 2:
                raise KeyboardInterrupt
            executed.append(self.random_seed)
            return original(self, prepared)

        monkeypatch.setattr(Experiment, "train_candidates", crash_on_third)
        with pytest.raises(KeyboardInterrupt):
            run_grid(german, small_grid(), results_store=store)
        # the two runs that finished before the crash were persisted...
        assert len(store.load()) == 2
        # ...so resume only recomputes the remainder
        monkeypatch.setattr(Experiment, "train_candidates", original)
        resumed = run_grid(german, small_grid(), results_store=store, resume=True)
        assert len(resumed) == 4 and len(store.load()) == 4

    def test_parallel_jobs_zero_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(jobs=0)

    def test_resume_tolerates_torn_store_line(self, german, tmp_path, serial_results):
        store = ResultsStore(str(tmp_path / "torn.jsonl"))
        store.extend(serial_results[:2])
        with open(store.path, "a") as handle:
            handle.write('{"dataset": "germancredit", "ran')  # interrupted write
        resumed = run_grid(german, small_grid(), results_store=store, resume=True)
        assert [r.to_json() for r in resumed] == [
            r.to_json() for r in serial_results
        ]
        with pytest.raises(ValueError):
            store.load()  # strict load still surfaces the corruption

    def test_resume_shared_between_run_grid_and_standard_experiment(
        self, german, tmp_path, serial_results, monkeypatch
    ):
        from repro.core.standard_experiments import GermanCreditExperiment

        store = ResultsStore(str(tmp_path / "shared.jsonl"))
        store.extend(serial_results)

        def explode(self, prepared):
            raise AssertionError("entry points must share run fingerprints")

        monkeypatch.setattr(Experiment, "train_candidates", explode)
        resumed = GermanCreditExperiment.run_grid(
            small_grid(), results_store=store, resume=True
        )
        assert [r.to_json() for r in resumed] == [
            r.to_json() for r in serial_results
        ]

    def test_progress_reports_resumed_and_computed(
        self, german, tmp_path, serial_results
    ):
        store = ResultsStore(str(tmp_path / "progress.jsonl"))
        store.extend(serial_results[:2])
        calls = []
        run_grid(
            german,
            small_grid(),
            results_store=store,
            resume=True,
            progress=lambda done, total, result: calls.append((done, total)),
        )
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]


class _FailsOnSeedTwo(LogisticRegression):
    """Module-level (fork-picklable) learner that fails for seed 2 only."""

    def __init__(self):
        super().__init__(tuned=False)

    def fit_model(self, train_data, seed):
        if seed == 2:
            raise RuntimeError("injected failure")
        return super().fit_model(train_data, seed)


class TestParallelFailure:
    def test_failed_worker_keeps_other_groups_results(self, german, tmp_path):
        grid = GridSpec(
            seeds=[1, 2],
            learners=[_FailsOnSeedTwo],
            interventions=[NoIntervention, lambda: DIRemover(0.5)],
        )
        store = ResultsStore(str(tmp_path / "failure.jsonl"))
        with pytest.raises(RuntimeError, match="injected failure"):
            run_grid(
                german,
                grid,
                results_store=store,
                executor=ParallelExecutor(jobs=2),
            )
        # the seed-1 group completed in the other worker and was persisted
        stored = store.load()
        assert {r.random_seed for r in stored} == {1}
        assert len(stored) == 2


class _StatefulPost(PostProcessor):
    def __init__(self, threshold=0.5):
        self.threshold = threshold

    def fit(self, validation_true, validation_pred, privileged, unprivileged, seed):
        self.fitted_ = True
        return self

    def apply(self, predictions):
        return predictions


class TestPostProcessorClone:
    def test_default_clone_preserves_params_and_drops_state(self):
        post = _StatefulPost(threshold=0.7)
        post.fit(None, None, None, None, 0)
        fresh = post.clone()
        assert fresh is not post
        assert fresh.threshold == 0.7
        assert not hasattr(fresh, "fitted_")

    @pytest.mark.parametrize(
        "post",
        [
            RejectOptionPostProcessor(num_class_thresh=7, num_ROC_margin=3),
            CalibratedEqOddsPostProcessor(cost_constraint="fnr"),
            NoIntervention(),
        ],
        ids=["reject-option", "cal-eq-odds", "no-intervention"],
    )
    def test_builtin_postprocessors_clone(self, post):
        fresh = post.clone()
        assert type(fresh) is type(post)
        assert component_fingerprint(fresh) == component_fingerprint(post)

    def test_clone_override_wins(self):
        class Custom(_StatefulPost):
            def clone(self):
                return self

        custom = Custom()
        assert custom.clone() is custom


class TestComponentFingerprint:
    def test_parameter_aware(self):
        assert component_fingerprint(DIRemover(0.5)) != component_fingerprint(
            DIRemover(1.0)
        )
        assert component_fingerprint(DIRemover(0.5)) == component_fingerprint(
            DIRemover(0.5)
        )

    def test_none_component(self):
        assert component_fingerprint(None) == "None"


class TestStoreBackedGrids:
    def _spill(self, frame, path) -> str:
        from repro.frame.storage import FrameStoreWriter

        with FrameStoreWriter(str(path)) as writer:
            writer.append(frame)
        return str(path)

    def test_run_grid_from_frame_store_matches_in_memory(
        self, german, serial_results, tmp_path
    ):
        frame, _ = german
        store_dir = self._spill(frame, tmp_path / "store")
        results = run_grid("germancredit", small_grid(), frame_store=store_dir)
        # same metrics as the in-memory run; different run_keys, because
        # the fingerprint now derives from the store manifest, not the name
        assert [r.test_metrics for r in results] == [
            r.test_metrics for r in serial_results
        ]
        assert {r.run_key for r in results}.isdisjoint(
            {r.run_key for r in serial_results}
        )

    def test_identical_stores_agree_on_fingerprints(self, german, tmp_path):
        from repro.core import open_store_dataset

        frame, _ = german
        first = self._spill(frame, tmp_path / "a")
        second = self._spill(frame, tmp_path / "b")
        _, _, fp_a = open_store_dataset("germancredit", first)
        _, _, fp_b = open_store_dataset("germancredit", second)
        assert fp_a == fp_b
        assert fp_a.startswith("store:")
        assert f"rows={frame.num_rows}" in fp_a

    def test_different_store_contents_change_fingerprint(self, german, tmp_path):
        from repro.core import open_store_dataset

        frame, _ = german
        full = self._spill(frame, tmp_path / "full")
        truncated = self._spill(frame.head(500), tmp_path / "half")
        _, _, fp_full = open_store_dataset("germancredit", full)
        _, _, fp_half = open_store_dataset("germancredit", truncated)
        assert fp_full != fp_half

    def test_frame_store_requires_named_dataset(self, german, tmp_path):
        frame, spec = german
        store_dir = self._spill(frame, tmp_path / "store")
        with pytest.raises(ValueError, match="registered dataset name"):
            run_grid((frame, spec), small_grid(), frame_store=store_dir)

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "nope"])

    def test_grid_defaults(self):
        args = build_parser().parse_args(["grid", "--dataset", "ricci"])
        assert args.seeds == 3
        assert "none" in args.interventions
        assert args.jobs == 1
        assert args.resume is False

    def test_grid_jobs_and_resume_flags(self):
        args = build_parser().parse_args(
            ["grid", "--dataset", "ricci", "--jobs", "4", "--resume"]
        )
        assert args.jobs == 4
        assert args.resume is True


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("adult", "germancredit", "propublica", "ricci", "payment"):
            assert name in out

    def test_describe(self, capsys):
        assert main(["describe", "--dataset", "ricci"]) == 0
        out = capsys.readouterr().out
        assert "written" in out
        assert "incomplete rows: 0 / 118" in out

    def test_describe_with_missing(self, capsys):
        assert main(["describe", "--dataset", "adult", "--size", "1000"]) == 0
        out = capsys.readouterr().out
        assert "incomplete rows:" in out
        assert "workclass" in out

    def test_run_complete_dataset(self, capsys):
        code = main([
            "run", "--dataset", "ricci", "--no-tuning", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall__accuracy" in out
        assert "group__disparate_impact" in out

    def test_run_with_intervention_and_scaler(self, capsys):
        code = main([
            "run", "--dataset", "germancredit", "--no-tuning",
            "--intervention", "reweighing", "--scaler", "minmax",
        ])
        assert code == 0
        assert "overall__accuracy" in capsys.readouterr().out

    def test_run_postprocessing_intervention(self, capsys):
        code = main([
            "run", "--dataset", "germancredit", "--no-tuning",
            "--intervention", "cal-eq-odds",
        ])
        assert code == 0

    def test_run_auto_imputation_on_adult(self, capsys):
        code = main([
            "run", "--dataset", "adult", "--size", "1500", "--no-tuning",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "imputed records" in out

    def test_run_protected_override(self, capsys):
        code = main([
            "run", "--dataset", "adult", "--size", "1500", "--no-tuning",
            "--protected", "sex",
        ])
        assert code == 0

    def test_grid_aggregates(self, capsys):
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "2",
            "--interventions", "none", "reweighing",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "NoIntervention" in out
        assert "Reweighing" in out

    def test_grid_writes_output(self, tmp_path, capsys):
        output = str(tmp_path / "runs.jsonl")
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "2",
            "--interventions", "none", "--output", output,
        ])
        assert code == 0
        from repro.core import ResultsStore

        assert len(ResultsStore(output).load()) == 2

    def test_grid_parallel_jobs(self, capsys):
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "2",
            "--interventions", "none", "--jobs", "2",
        ])
        assert code == 0
        assert "NoIntervention" in capsys.readouterr().out

    def test_grid_resume_requires_output(self, capsys):
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "1",
            "--interventions", "none", "--resume",
        ])
        assert code == 2
        assert "--resume requires --output" in capsys.readouterr().err

    def test_grid_resume_skips_stored_runs(self, tmp_path, capsys):
        output = str(tmp_path / "runs.jsonl")
        argv = [
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "2",
            "--interventions", "none", "--output", output, "--resume",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0  # second pass resumes, no duplicates appended
        from repro.core import ResultsStore

        assert len(ResultsStore(output).load()) == 2

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "nope"])

    def test_grid_defaults(self):
        args = build_parser().parse_args(["grid", "--dataset", "ricci"])
        assert args.seeds == 3
        assert "none" in args.interventions
        assert args.jobs == 1
        assert args.resume is False

    def test_grid_jobs_and_resume_flags(self):
        args = build_parser().parse_args(
            ["grid", "--dataset", "ricci", "--jobs", "4", "--resume"]
        )
        assert args.jobs == 4
        assert args.resume is True


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("adult", "germancredit", "propublica", "ricci", "payment"):
            assert name in out

    def test_describe(self, capsys):
        assert main(["describe", "--dataset", "ricci"]) == 0
        out = capsys.readouterr().out
        assert "written" in out
        assert "incomplete rows: 0 / 118" in out

    def test_describe_with_missing(self, capsys):
        assert main(["describe", "--dataset", "adult", "--size", "1000"]) == 0
        out = capsys.readouterr().out
        assert "incomplete rows:" in out
        assert "workclass" in out

    def test_run_complete_dataset(self, capsys):
        code = main([
            "run", "--dataset", "ricci", "--no-tuning", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall__accuracy" in out
        assert "group__disparate_impact" in out

    def test_run_with_intervention_and_scaler(self, capsys):
        code = main([
            "run", "--dataset", "germancredit", "--no-tuning",
            "--intervention", "reweighing", "--scaler", "minmax",
        ])
        assert code == 0
        assert "overall__accuracy" in capsys.readouterr().out

    def test_run_postprocessing_intervention(self, capsys):
        code = main([
            "run", "--dataset", "germancredit", "--no-tuning",
            "--intervention", "cal-eq-odds",
        ])
        assert code == 0

    def test_run_auto_imputation_on_adult(self, capsys):
        code = main([
            "run", "--dataset", "adult", "--size", "1500", "--no-tuning",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "imputed records" in out

    def test_run_protected_override(self, capsys):
        code = main([
            "run", "--dataset", "adult", "--size", "1500", "--no-tuning",
            "--protected", "sex",
        ])
        assert code == 0

    def test_grid_aggregates(self, capsys):
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "2",
            "--interventions", "none", "reweighing",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "NoIntervention" in out
        assert "Reweighing" in out

    def test_grid_writes_output(self, tmp_path, capsys):
        output = str(tmp_path / "runs.jsonl")
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "2",
            "--interventions", "none", "--output", output,
        ])
        assert code == 0
        from repro.core import ResultsStore

        assert len(ResultsStore(output).load()) == 2

    def test_grid_parallel_jobs(self, capsys):
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "2",
            "--interventions", "none", "--jobs", "2",
        ])
        assert code == 0
        assert "NoIntervention" in capsys.readouterr().out

    def test_grid_resume_requires_output(self, capsys):
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "1",
            "--interventions", "none", "--resume",
        ])
        assert code == 2
        assert "--resume requires --output" in capsys.readouterr().err

    def test_grid_resume_skips_stored_runs(self, tmp_path, capsys):
        output = str(tmp_path / "runs.jsonl")
        argv = [
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "2",
            "--interventions", "none", "--output", output, "--resume",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0  # second pass resumes, no duplicates appended
        from repro.core import ResultsStore

        assert len(ResultsStore(output).load()) == 2


class TestTelemetryCLI:
    @pytest.fixture(autouse=True)
    def clean_telemetry(self):
        from repro import telemetry

        telemetry.reset_for_tests()
        yield
        telemetry.reset_for_tests()

    def test_grid_trace_dir_then_trace_strict(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "trace")
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "1",
            "--interventions", "none", "--trace-dir", trace_dir,
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["trace", "--dir", trace_dir, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "1 root(s), 0 orphan(s)" in out
        assert "grid.run" in out
        assert "critical path" in out

    def test_trace_json_output(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "trace")
        main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "1",
            "--interventions", "none", "--trace-dir", trace_dir,
        ])
        capsys.readouterr()
        assert main(["trace", "--dir", trace_dir, "--json"]) == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["roots"] == 1
        assert "stage.train" in summary["stage_totals"]

    def test_trace_missing_dir_is_an_error(self, tmp_path, capsys):
        assert main(["trace", "--dir", str(tmp_path / "nope")]) == 2
        assert "no trace directory" in capsys.readouterr().err

    def test_trace_strict_rejects_forest(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace-host-1.jsonl"
        records = [
            {"kind": "span", "name": "a", "span": "h:1-1", "trace": "t",
             "ts": 0.0, "dur_s": 0.1, "pid": 1},
            {"kind": "span", "name": "b", "span": "h:1-2", "trace": "t",
             "ts": 0.2, "dur_s": 0.1, "pid": 1},
        ]
        trace_file.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        assert main(["trace", "--dir", str(tmp_path), "--strict"]) == 1
        assert "expected exactly 1 root" in capsys.readouterr().err

    def test_grid_quiet_suppresses_progress_keeps_table(self, capfd):
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "1",
            "--interventions", "none", "--quiet",
        ])
        assert code == 0
        captured = capfd.readouterr()
        assert "executing" not in captured.err
        assert "1/1" not in captured.err
        assert "NoIntervention" in captured.out

    def test_grid_writes_manifest_with_output(self, tmp_path, capfd):
        output = str(tmp_path / "runs.jsonl")
        code = main([
            "grid", "--dataset", "ricci", "--no-tuning", "--seeds", "1",
            "--interventions", "none", "--output", output, "--quiet",
        ])
        assert code == 0
        import json

        manifest = json.load(open(output + ".manifest.json"))
        assert manifest["dataset"] == "ricci"
        assert manifest["grid_size"] == 1

"""Integration-style unit tests for the Experiment lifecycle."""

import numpy as np
import pytest

from repro.core import (
    AccuracySelector,
    CalibratedEqOddsPostProcessor,
    CompleteCaseAnalysis,
    ConstrainedSelector,
    DIRemover,
    DatawigImputer,
    DecisionTree,
    Experiment,
    FunctionSelector,
    Learner,
    LogisticRegression,
    ModeImputer,
    NoIntervention,
    RejectOptionPostProcessor,
    ReweighingPreProcessor,
    ResultsStore,
    RunResult,
)
from repro.datasets import load_dataset
from repro.learn import NoOpScaler, StandardScaler

FAST_LR = dict(tuned=False)
SMALL_GRID_LR = dict(tuned=True, param_grid={"penalty": ["l2"], "alpha": [0.001, 0.01]}, cv=3)


@pytest.fixture(scope="module")
def german():
    return load_dataset("germancredit")


@pytest.fixture(scope="module")
def adult_small():
    return load_dataset("adult", n=3000)


class TestLifecycleBasics:
    def test_split_sizes_70_10_20(self, german):
        frame, spec = german
        result = Experiment(
            frame, spec, random_seed=0, learner=LogisticRegression(**FAST_LR)
        ).run()
        assert result.sizes["train"] == 700
        assert result.sizes["validation"] == 100
        assert result.sizes["test"] == 200

    def test_metric_bundle_complete(self, german):
        frame, spec = german
        result = Experiment(
            frame, spec, random_seed=0, learner=LogisticRegression(**FAST_LR)
        ).run()
        assert len(result.test_metrics) == 25 * 3 + 22
        assert "overall__accuracy" in result.test_metrics
        assert "group__disparate_impact" in result.test_metrics

    def test_validation_and_train_metrics_recorded(self, german):
        frame, spec = german
        result = Experiment(
            frame, spec, random_seed=0, learner=LogisticRegression(**FAST_LR)
        ).run()
        candidate = result.best_candidate
        assert "overall__accuracy" in candidate.validation_metrics
        assert "overall__accuracy" in candidate.train_metrics

    def test_component_description(self, german):
        frame, spec = german
        experiment = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(**FAST_LR),
            pre_processor=DIRemover(0.5),
        )
        description = experiment.component_description()
        assert description["pre_processor"] == "DIRemover(0.5)"
        assert description["scaler"] == "StandardScaler"
        assert description["protected_attribute"] == "sex"

    def test_requires_at_least_one_learner(self, german):
        frame, spec = german
        with pytest.raises(ValueError, match="learner"):
            Experiment(frame, spec, random_seed=0, learner=[])


class TestReproducibility:
    def test_same_seed_identical_results(self, german):
        frame, spec = german
        runs = [
            Experiment(
                frame, spec, random_seed=7, learner=LogisticRegression(**FAST_LR)
            ).run()
            for _ in range(2)
        ]
        assert runs[0].to_json() == runs[1].to_json()

    def test_different_seeds_differ(self, german):
        frame, spec = german
        a = Experiment(frame, spec, random_seed=1, learner=LogisticRegression(**FAST_LR)).run()
        b = Experiment(frame, spec, random_seed=2, learner=LogisticRegression(**FAST_LR)).run()
        assert a.test_metrics["overall__accuracy"] != pytest.approx(
            b.test_metrics["overall__accuracy"], abs=1e-12
        ) or a.to_json() != b.to_json()


class _SpyLearner(Learner):
    """Records what the framework exposes to user code."""

    def __init__(self):
        self.seen_rows = None
        self.seen_seed = None

    def fit_model(self, train_data, seed):
        self.seen_rows = train_data.num_instances
        self.seen_seed = seed
        return LogisticRegression(tuned=False).fit_model(train_data, seed)

    def name(self):
        return "Spy"


class TestIsolation:
    def test_learner_sees_only_training_rows(self, german):
        frame, spec = german
        spy = _SpyLearner()
        Experiment(frame, spec, random_seed=0, learner=spy).run()
        assert spy.seen_rows == 700  # train split only, never val/test

    def test_seed_propagated_to_learner(self, german):
        frame, spec = german
        spy = _SpyLearner()
        Experiment(frame, spec, random_seed=123, learner=spy).run()
        assert spy.seen_seed == 123

    def test_scaler_never_refit_on_eval_data(self, german):
        frame, spec = german

        class CountingScaler(StandardScaler):
            fit_calls = 0

            def fit(self, X, y=None):
                type(self).fit_calls += 1
                return super().fit(X, y)

        CountingScaler.fit_calls = 0
        Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(**FAST_LR),
            numeric_attribute_scaler=CountingScaler(),
        ).run()
        assert CountingScaler.fit_calls == 1


class TestInterventions:
    @pytest.mark.parametrize(
        "pre",
        [None, ReweighingPreProcessor(), DIRemover(0.5), DIRemover(1.0)],
        ids=["none", "reweighing", "di-0.5", "di-1.0"],
    )
    def test_preprocessing_interventions_run(self, german, pre):
        frame, spec = german
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(**FAST_LR),
            pre_processor=pre,
        ).run()
        assert 0.4 < result.test_metrics["overall__accuracy"] <= 1.0

    @pytest.mark.parametrize(
        "post",
        [
            RejectOptionPostProcessor(num_class_thresh=10, num_ROC_margin=10),
            CalibratedEqOddsPostProcessor(),
        ],
        ids=["reject-option", "cal-eq-odds"],
    )
    def test_postprocessing_interventions_run(self, german, post):
        frame, spec = german
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(**FAST_LR),
            post_processor=post,
        ).run()
        assert 0.4 < result.test_metrics["overall__accuracy"] <= 1.0

    def test_reweighing_reduces_training_disparity(self, german):
        frame, spec = german
        base = Experiment(
            frame, spec, random_seed=3, learner=LogisticRegression(**SMALL_GRID_LR)
        ).run()
        reweighed = Experiment(
            frame,
            spec,
            random_seed=3,
            learner=LogisticRegression(**SMALL_GRID_LR),
            pre_processor=ReweighingPreProcessor(),
        ).run()
        # reweighing should pull the test-set DI toward 1
        assert abs(1.0 - reweighed.test_metrics["group__disparate_impact"]) <= abs(
            1.0 - base.test_metrics["group__disparate_impact"]
        ) + 0.15

    def test_postprocessor_requiring_scores_with_scoreless_model(self, german):
        frame, spec = german

        class ScorelessLearner(Learner):
            def fit_model(self, train_data, seed):
                inner = LogisticRegression(tuned=False).fit_model(train_data, seed)

                class NoScores:
                    def predict(self, X):
                        return inner.predict(X)

                    def predict_scores(self, X):
                        return None

                return NoScores()

        with pytest.raises(ValueError, match="scores"):
            Experiment(
                frame,
                spec,
                random_seed=0,
                learner=ScorelessLearner(),
                post_processor=CalibratedEqOddsPostProcessor(),
            ).run()


class TestModelSelection:
    def test_multiple_candidates_best_by_accuracy(self, german):
        frame, spec = german
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=[LogisticRegression(**FAST_LR), DecisionTree(tuned=False)],
        ).run()
        assert len(result.candidates) == 2
        accuracies = [
            c.validation_metrics["overall__accuracy"] for c in result.candidates
        ]
        assert result.best_index == int(np.argmax(accuracies))

    def test_function_selector(self, german):
        frame, spec = german
        pick_last = FunctionSelector(lambda metrics: len(metrics) - 1, label="last")
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=[LogisticRegression(**FAST_LR), DecisionTree(tuned=False)],
            model_selector=pick_last,
        ).run()
        assert result.best_index == 1

    def test_constrained_selector(self, german):
        frame, spec = german
        selector = ConstrainedSelector(
            objective="overall__accuracy",
            constraint_metric="group__disparate_impact",
            constraint_target=1.0,
            constraint_slack=0.5,
        )
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=[LogisticRegression(**FAST_LR), DecisionTree(tuned=False)],
            model_selector=selector,
        ).run()
        assert result.best_index in (0, 1)


class TestMissingValueLifecycle:
    def test_complete_case_shrinks_splits(self, adult_small):
        frame, spec = adult_small
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(**FAST_LR),
            missing_value_handler=CompleteCaseAnalysis(),
        ).run()
        assert result.sizes["test"] < 600
        assert result.sizes["test_incomplete"] == 0
        assert result.test_metrics_incomplete == {}

    def test_imputation_keeps_all_rows_and_reports_strata(self, adult_small):
        frame, spec = adult_small
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(**FAST_LR),
            missing_value_handler=ModeImputer(),
        ).run()
        assert result.sizes["test"] == 600
        assert result.sizes["test_incomplete"] > 0
        assert "overall__accuracy" in result.test_metrics_incomplete
        assert "overall__accuracy" in result.test_metrics_complete

    def test_datawig_imputer_in_lifecycle(self, adult_small):
        frame, spec = adult_small
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(**FAST_LR),
            missing_value_handler=DatawigImputer(),
        ).run()
        assert result.sizes["test_incomplete"] > 0

    def test_missing_data_without_handler_fails_loudly(self, adult_small):
        frame, spec = adult_small
        with pytest.raises(ValueError, match="missing values"):
            Experiment(
                frame, spec, random_seed=0, learner=LogisticRegression(**FAST_LR)
            ).run()


class TestScalers:
    def test_noop_scaler_accepted(self, german):
        frame, spec = german
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=DecisionTree(tuned=False),
            numeric_attribute_scaler=NoOpScaler(),
        ).run()
        assert result.test_metrics["overall__accuracy"] > 0.5


class TestResultsStore:
    def test_run_appends_to_store(self, german, tmp_path):
        frame, spec = german
        store = ResultsStore(str(tmp_path / "results.jsonl"))
        Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(**FAST_LR),
            results_store=store,
        ).run()
        loaded = store.load()
        assert len(loaded) == 1
        assert loaded[0].dataset == "germancredit"

    def test_json_roundtrip(self, german):
        frame, spec = german
        result = Experiment(
            frame, spec, random_seed=0, learner=LogisticRegression(**FAST_LR)
        ).run()
        clone = RunResult.from_json(result.to_json())
        assert clone.to_json() == result.to_json()

"""Unit tests for missing-value handlers and resamplers."""

import numpy as np
import pytest

from repro.core import (
    BootstrapResampler,
    ClassBalancingResampler,
    CompleteCaseAnalysis,
    DatawigImputer,
    LearnedImputer,
    ModeImputer,
    NoMissingValues,
    NoResampling,
)
from repro.frame import DataFrame

FEATURES = ["age", "job", "city"]


@pytest.fixture
def train():
    return DataFrame.from_dict(
        {
            "age": [30.0, 40.0, None, 50.0, 40.0, 35.0],
            "job": ["a", "a", "b", None, "a", "b"],
            "city": ["x", "y", "x", "x", None, "y"],
            "label": ["p", "n", "p", "n", "p", "n"],
        }
    )


@pytest.fixture
def test_frame():
    return DataFrame.from_dict(
        {
            "age": [None, 60.0],
            "job": ["b", None],
            "city": ["x", "x"],
            "label": ["p", "n"],
        }
    )


class TestCompleteCase:
    def test_drops_incomplete_rows(self, train):
        handler = CompleteCaseAnalysis().fit(train, FEATURES, seed=0)
        out = handler.handle_missing(train)
        assert out.num_rows == 3
        assert out.num_incomplete_rows() == 0

    def test_drops_rows_flag(self):
        assert CompleteCaseAnalysis().drops_rows

    def test_applies_to_any_split(self, train, test_frame):
        handler = CompleteCaseAnalysis().fit(train, FEATURES, seed=0)
        assert handler.handle_missing(test_frame).num_rows == 0


class TestNoMissingValues:
    def test_passthrough_on_complete_data(self, train):
        complete = train.dropna()
        handler = NoMissingValues().fit(complete, FEATURES, seed=0)
        assert handler.handle_missing(complete).equals(complete)

    def test_raises_on_missing(self, train):
        handler = NoMissingValues().fit(train, FEATURES, seed=0)
        with pytest.raises(ValueError, match="missing values"):
            handler.handle_missing(train)


class TestModeImputer:
    def test_fills_with_train_statistics(self, train, test_frame):
        handler = ModeImputer().fit(train, FEATURES, seed=0)
        out = handler.handle_missing(test_frame)
        assert out["age"][0] == pytest.approx(39.0)  # train mean
        assert out["job"][1] == "a"  # train mode

    def test_preserves_row_count_and_order(self, train):
        handler = ModeImputer().fit(train, FEATURES, seed=0)
        out = handler.handle_missing(train)
        assert out.num_rows == train.num_rows
        assert list(out["label"]) == list(train["label"])

    def test_no_missing_after_handling(self, train):
        handler = ModeImputer().fit(train, FEATURES, seed=0)
        assert handler.handle_missing(train).missing_mask(FEATURES).sum() == 0

    def test_does_not_drop_rows(self):
        assert not ModeImputer().drops_rows

    def test_original_frame_untouched(self, train):
        handler = ModeImputer().fit(train, FEATURES, seed=0)
        handler.handle_missing(train)
        assert train.col("age").num_missing() == 1


def _mnar_frame(n=400, seed=0):
    """Numeric + categorical frame where the missing column is predictable."""
    rng = np.random.default_rng(seed)
    group = rng.choice(["g1", "g2"], size=n)
    age = np.where(group == "g1", 30.0, 60.0) + rng.normal(0, 2.0, n)
    color = np.where(group == "g1", "red", "blue").astype(object)
    # hide 25% of color and age values
    color[rng.random(n) < 0.25] = None
    age_obj = age.astype(object)
    age_obj[rng.random(n) < 0.25] = None
    return DataFrame.from_dict(
        {
            "group": group,
            "age": age_obj,
            "color": color,
            "label": rng.choice(["p", "n"], size=n),
        },
        kinds={"age": "numeric"},
    )


class TestLearnedImputer:
    def test_categorical_imputation_uses_predictors(self):
        frame = _mnar_frame()
        handler = LearnedImputer().fit(frame, ["group", "age", "color"], seed=0)
        out = handler.handle_missing(frame)
        mask = frame.col("color").missing_mask()
        imputed = out["color"][mask]
        truth = np.where(frame["group"][mask] == "g1", "red", "blue")
        accuracy = (imputed == truth).mean()
        assert accuracy > 0.9  # far better than the ~0.5 mode baseline

    def test_numeric_imputation_tracks_group_means(self):
        frame = _mnar_frame(seed=1)
        handler = LearnedImputer().fit(frame, ["group", "age", "color"], seed=0)
        out = handler.handle_missing(frame)
        mask = frame.col("age").missing_mask()
        g1 = mask & (frame["group"] == "g1")
        g2 = mask & (frame["group"] == "g2")
        assert abs(out["age"][g1].mean() - 30.0) < 4.0
        assert abs(out["age"][g2].mean() - 60.0) < 4.0

    def test_no_missing_left(self):
        frame = _mnar_frame()
        handler = LearnedImputer().fit(frame, ["group", "age", "color"], seed=0)
        out = handler.handle_missing(frame)
        assert out.missing_mask(["group", "age", "color"]).sum() == 0

    def test_explicit_target_columns(self):
        frame = _mnar_frame()
        handler = LearnedImputer(target_columns=["color"]).fit(
            frame, ["group", "age", "color"], seed=0
        )
        out = handler.handle_missing(frame)
        assert out.col("color").num_missing() == 0
        # age is not a target but still gets the fallback fill
        assert out.col("age").num_missing() == 0

    def test_unknown_target_rejected(self):
        frame = _mnar_frame()
        with pytest.raises(KeyError, match="outside"):
            LearnedImputer(target_columns=["nope"]).fit(
                frame, ["group", "age", "color"], seed=0
            )

    def test_handle_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            LearnedImputer().handle_missing(_mnar_frame())

    def test_label_never_used_as_predictor(self):
        # feature set excludes 'label'; imputation must work without it and
        # the encoder must not see it
        frame = _mnar_frame()
        handler = LearnedImputer().fit(frame, ["group", "age", "color"], seed=0)
        for model in handler._models.values():
            if "encoder" in model:
                encoded_columns = model["encoder"].columns
                assert "label" not in encoded_columns

    def test_datawig_alias(self):
        assert issubclass(DatawigImputer, LearnedImputer)

    def test_deterministic_given_seed(self):
        frame = _mnar_frame()
        a = LearnedImputer().fit(frame, ["group", "age", "color"], seed=5)
        b = LearnedImputer().fit(frame, ["group", "age", "color"], seed=5)
        out_a = a.handle_missing(frame)
        out_b = b.handle_missing(frame)
        assert out_a.equals(out_b)


class TestResamplers:
    def test_no_resampling_identity(self, train):
        assert NoResampling().resample(train, seed=0) is train

    def test_bootstrap_size(self, train):
        out = BootstrapResampler(fraction=2.0).resample(train, seed=0)
        assert out.num_rows == 12

    def test_bootstrap_deterministic(self, train):
        a = BootstrapResampler().resample(train, seed=3)
        b = BootstrapResampler().resample(train, seed=3)
        assert a.equals(b)

    def test_bootstrap_invalid_fraction(self):
        with pytest.raises(ValueError):
            BootstrapResampler(fraction=0.0)

    def test_class_balancing_equalizes(self):
        frame = DataFrame.from_dict(
            {
                "x": list(range(10)),
                "label": ["p"] * 8 + ["n"] * 2,
            }
        )
        out = ClassBalancingResampler("label").resample(frame, seed=0)
        values, counts = np.unique(list(out["label"]), return_counts=True)
        assert counts[0] == counts[1] == 8

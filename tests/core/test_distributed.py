"""Distributed executor coverage: framing, lease fault tolerance, and
byte-identity with the serial backend.

Protocol-level tests drive a :class:`Coordinator` directly with raw
frames (no experiment execution), so disconnects, expiries, duplicates
and stale results are exercised deterministically; end-to-end tests run
real forked workers over germancredit and compare against
:class:`SerialExecutor` output byte for byte.
"""

import json
import socket
import struct
import threading
import time

import pytest

from repro.core import (
    DIRemover,
    DistributedExecutor,
    GridSpec,
    LogisticRegression,
    NoIntervention,
    ResultsStore,
    SerialExecutor,
    make_executor,
)
from repro.core.distributed import (
    Coordinator,
    PlanMismatchError,
    ProtocolError,
    parse_address,
    recv_frame,
    send_frame,
    worker_loop,
)
from repro.core.executors import EXECUTOR_BACKENDS, ExecutionPlan
from repro.datasets import load_dataset


def small_grid(seeds=(1, 2)):
    return GridSpec(
        seeds=list(seeds),
        learners=[lambda: LogisticRegression(tuned=False)],
        interventions=[NoIntervention, lambda: DIRemover(0.5)],
    )


@pytest.fixture(scope="module")
def german():
    return load_dataset("germancredit")


@pytest.fixture(scope="module")
def german_plan(german):
    frame, spec = german
    return ExecutionPlan.for_grid(frame, spec, small_grid())


@pytest.fixture(scope="module")
def serial_results(german_plan):
    return SerialExecutor().run(german_plan)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# ----------------------------------------------------------------------
# framing + address parsing
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        message = {"type": "result", "nested": {"x": [1, 2.5, None, "é"]}}
        send_frame(a, message)
        assert recv_frame(b) == message
        a.close()
        assert recv_frame(b) is None  # clean EOF between frames
        b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack(">I", 100) + b'{"type"')
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack(">I", 2**31))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(b)
        a.close()
        b.close()

    def test_non_object_frame_rejected(self):
        a, b = socket.socketpair()
        data = json.dumps([1, 2]).encode()
        a.sendall(struct.pack(">I", len(data)) + data)
        with pytest.raises(ProtocolError, match="not a JSON object"):
            recv_frame(b)
        a.close()
        b.close()

    def test_parse_address_forms(self):
        assert parse_address("10.0.0.2:9000") == ("10.0.0.2", 9000)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        assert parse_address("9000") == ("127.0.0.1", 9000)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("nope")


# ----------------------------------------------------------------------
# protocol-level coordinator harness (no experiment execution)
# ----------------------------------------------------------------------
def fake_result(run_key):
    """A minimal but loadable RunResult wire dict."""
    return {
        "dataset": "germancredit",
        "random_seed": 0,
        "components": {},
        "candidates": [
            {"learner": "lr", "validation_metrics": {"overall__accuracy": 0.5}}
        ],
        "best_index": 0,
        "test_metrics": {"overall__accuracy": 0.5},
        "run_key": run_key,
    }


class CoordinatorHarness:
    """A live Coordinator over raw configs + a frame-level client."""

    def __init__(self, groups, lease_seconds=0.25):
        self.merged = {}
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.coordinator = Coordinator(
            self.sock,
            groups,
            self._emit,
            lease_seconds=lease_seconds,
        )
        self.coordinator.start()

    def _emit(self, configs, results):
        for config, result in zip(configs, results):
            assert config.run_key not in self.merged, "double merge"
            self.merged[config.run_key] = result

    def connect(self, worker="fake"):
        conn = socket.create_connection(self.coordinator.address)
        send_frame(conn, {"type": "register", "worker": worker})
        welcome = recv_frame(conn)
        assert welcome["type"] == "welcome"
        return conn

    def lease(self, conn):
        send_frame(conn, {"type": "lease"})
        return recv_frame(conn)

    def close(self):
        self.coordinator.stop()


@pytest.fixture()
def configs():
    # plain plan expansion: real run/prep keys, no frame needed
    return small_grid().expand("germancredit")


class TestCoordinatorProtocol:
    def test_lease_complete_merges_and_counts_stats(self, configs):
        harness = CoordinatorHarness([configs[:2], configs[2:]])
        try:
            conn = harness.connect(worker="w1")
            work = harness.lease(conn)
            assert work["type"] == "work"
            assert work["prep_key"] == configs[0].prep_key
            for key in work["run_keys"]:
                send_frame(
                    conn,
                    {
                        "type": "result",
                        "lease": work["lease"],
                        "run_key": key,
                        "result": fake_result(key),
                    },
                )
            send_frame(
                conn,
                {
                    "type": "complete",
                    "lease": work["lease"],
                    "stats": {"runs": 2, "groups": 1, "prep_builds": 1,
                              "seconds": 0.5},
                },
            )
            ack = recv_frame(conn)
            assert ack == {"type": "ack", "stale": False}
            stats = harness.coordinator.stats
            assert stats["completed"] == 2
            assert stats["workers"]["w1"]["runs"] == 2
            assert stats["workers"]["w1"]["prep_builds"] == 1
            assert set(harness.merged) == set(work["run_keys"])
            conn.close()
        finally:
            harness.close()

    def test_duplicate_results_dropped(self, configs):
        harness = CoordinatorHarness([configs[:2]])
        try:
            conn = harness.connect()
            work = harness.lease(conn)
            key = work["run_keys"][0]
            for _ in range(3):
                send_frame(
                    conn,
                    {
                        "type": "result",
                        "lease": work["lease"],
                        "run_key": key,
                        "result": fake_result(key),
                    },
                )
            send_frame(conn, {"type": "complete", "lease": work["lease"]})
            recv_frame(conn)
            assert harness.coordinator.stats["duplicates"] == 2
            # the store saw the key exactly once
            assert list(harness.merged) == [key]
            conn.close()
        finally:
            harness.close()

    def test_disconnect_requeues_unfinished_keys(self, configs):
        harness = CoordinatorHarness([configs[:2]])
        try:
            conn = harness.connect()
            work = harness.lease(conn)
            key = work["run_keys"][0]
            send_frame(
                conn,
                {
                    "type": "result",
                    "lease": work["lease"],
                    "run_key": key,
                    "result": fake_result(key),
                },
            )
            conn.close()  # dies without completing the lease
            assert wait_until(
                lambda: harness.coordinator.stats["requeued"] == 1
            )
            # the streamed result survived the crash; only the missing
            # key went back on the queue, at the front
            assert list(harness.merged) == [key]
            second = harness.connect(worker="w2")
            work2 = harness.lease(second)
            assert work2["run_keys"] == [k for k in work["run_keys"] if k != key]
            second.close()
        finally:
            harness.close()

    def test_lease_expiry_requeues_and_stale_result_recovered(self, configs):
        harness = CoordinatorHarness([configs[:2]], lease_seconds=0.2)
        try:
            conn = harness.connect()
            work = harness.lease(conn)
            # stall silently (no heartbeat, no results) past the deadline
            assert wait_until(
                lambda: harness.coordinator.stats["requeued"] == 2
            )
            # the stalled worker wakes up and streams a result anyway:
            # merged directly (the key is still missing), counted stale
            key = work["run_keys"][0]
            send_frame(
                conn,
                {
                    "type": "result",
                    "lease": work["lease"],
                    "run_key": key,
                    "result": fake_result(key),
                },
            )
            assert wait_until(
                lambda: harness.coordinator.stats["stale_results"] == 1
            )
            assert list(harness.merged) == [key]
            # a fresh worker re-leases only the still-missing key
            second = harness.connect(worker="w2")
            work2 = harness.lease(second)
            assert work2["run_keys"] == [k for k in work["run_keys"] if k != key]
            second.close()
            conn.close()
        finally:
            harness.close()

    def test_heartbeat_holds_a_slow_lease(self, configs):
        harness = CoordinatorHarness([configs[:2]], lease_seconds=0.3)
        try:
            conn = harness.connect()
            work = harness.lease(conn)
            for _ in range(6):  # stay silent except for heartbeats
                time.sleep(0.1)
                send_frame(conn, {"type": "heartbeat", "lease": work["lease"]})
            assert harness.coordinator.stats["requeued"] == 0
            conn.close()
        finally:
            harness.close()

    def test_empty_grid_finishes_immediately(self):
        harness = CoordinatorHarness([])
        try:
            assert harness.coordinator.finished.is_set()
            conn = harness.connect()
            assert harness.lease(conn) == {"type": "done"}
            conn.close()
        finally:
            harness.close()


# ----------------------------------------------------------------------
# end-to-end: forked localhost workers, byte-identity with serial
# ----------------------------------------------------------------------
class TestDistributedEndToEnd:
    def test_results_byte_identical_to_serial(
        self, german_plan, serial_results, tmp_path
    ):
        store = ResultsStore(str(tmp_path / "dist.jsonl"))
        executor = DistributedExecutor(workers=2, lease_seconds=10.0)
        results = executor.run(german_plan, results_store=store)
        assert [r.to_json() for r in results] == [
            r.to_json() for r in serial_results
        ]
        # store contents match a serial store modulo row order
        serial_store = ResultsStore(str(tmp_path / "serial.jsonl"))
        serial_store.extend(serial_results)
        with open(store.path) as d, open(serial_store.path) as s:
            assert sorted(d.readlines()) == sorted(s.readlines())

    def test_worker_stats_cover_every_run(self, german_plan):
        executor = DistributedExecutor(workers=2, lease_seconds=10.0)
        executor.run(german_plan)
        stats = executor.stats
        assert stats["completed"] == stats["total"] == 4
        assert stats["requeued"] == 0
        per_worker = stats["workers"].values()
        assert sum(w["runs"] for w in per_worker) == 4
        # shared preparation: each 2-run group built its splits once
        assert all(w["prep_builds"] <= w["runs"] for w in per_worker)

    def test_resume_executes_only_missing_keys(
        self, german_plan, serial_results, tmp_path
    ):
        store = ResultsStore(str(tmp_path / "partial.jsonl"))
        store.extend(serial_results[:2])
        executor = DistributedExecutor(workers=1, lease_seconds=10.0)
        results = executor.run(german_plan, results_store=store, resume=True)
        assert executor.stats["total"] == 2  # only the missing half leased
        assert [r.to_json() for r in results] == [
            r.to_json() for r in serial_results
        ]

    def test_manifest_round_trip_to_external_worker(self, german, german_plan):
        frame, spec = german
        manifest = {"dataset": "germancredit", "token": 41}
        seen = {}

        def plan_factory(received):
            seen.update(received)
            # an external worker rebuilds an equivalent plan from names
            return ExecutionPlan.for_grid(frame, spec, small_grid())

        executor = DistributedExecutor(
            workers=0, lease_seconds=10.0, manifest=manifest
        )
        address = executor.address
        runner = threading.Thread(
            target=lambda: setattr(
                executor, "_results", executor.run(german_plan)
            )
        )
        runner.start()
        stats = worker_loop(address, plan_factory=plan_factory, worker_id="ext")
        runner.join(timeout=60)
        assert not runner.is_alive()
        assert seen == manifest
        assert stats["runs"] == 4
        assert executor.stats["workers"]["ext"]["runs"] == 4

    def test_plan_mismatch_fails_loudly(self, german, german_plan):
        frame, spec = german
        wrong_plan = ExecutionPlan.for_grid(
            frame, spec, small_grid(seeds=(7, 8))
        )
        executor = DistributedExecutor(
            workers=0, lease_seconds=10.0, manifest={"v": 1}
        )
        address = executor.address
        results_box = {}
        runner = threading.Thread(
            target=lambda: results_box.setdefault(
                "results", executor.run(german_plan)
            )
        )
        runner.start()
        with pytest.raises(PlanMismatchError, match="missing from this"):
            worker_loop(address, plan=wrong_plan, worker_id="bad")
        # a correct worker then drains the grid: the mismatch cost nothing
        stats = worker_loop(address, plan=german_plan, worker_id="good")
        runner.join(timeout=60)
        assert not runner.is_alive()
        assert stats["runs"] == 4
        assert len(results_box["results"]) == 4

    def test_all_local_workers_dead_raises(self, german, german_plan):
        frame, spec = german
        executor = DistributedExecutor(workers=1, lease_seconds=2.0)
        bad_plan = ExecutionPlan.for_grid(frame, spec, small_grid())
        bad_plan.grid = None  # build_experiment will fail in the worker
        with pytest.raises(RuntimeError, match="exited before the grid"):
            executor.run(bad_plan)


class TestBackendRegistry:
    def test_distributed_backend_registered(self):
        assert set(EXECUTOR_BACKENDS) >= {"serial", "parallel", "distributed"}
        executor = make_executor("distributed", workers=0, manifest={})
        try:
            assert executor.workers == 0
        finally:
            executor.close()

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(KeyError, match="distributed"):
            make_executor("definitely-not-a-backend")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            DistributedExecutor(workers=-1)
        sock = socket.create_server(("127.0.0.1", 0))
        try:
            with pytest.raises(ValueError, match="lease_seconds"):
                Coordinator(sock, [], lambda c, r: None, lease_seconds=0)
        finally:
            sock.close()

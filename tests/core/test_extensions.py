"""Tests for the future-work extensions: stratified sampling and
alternative categorical encoders inside the lifecycle."""

import numpy as np
import pytest

from repro.core import (
    Experiment,
    LogisticRegression,
    StratifiedSampler,
)
from repro.datasets import load_dataset
from repro.frame import DataFrame, value_counts
from repro.learn import FrequencyEncoder, SVDEmbeddingEncoder, TargetEncoder


class TestStratifiedSampler:
    @pytest.fixture
    def frame(self):
        return DataFrame.from_dict(
            {
                "x": list(range(100)),
                "group": ["a"] * 80 + ["b"] * 20,
            }
        )

    def test_preserves_proportions(self, frame):
        out = StratifiedSampler("group", fraction=0.5).resample(frame, seed=0)
        counts = value_counts(out, "group")
        assert counts["a"] == 40 and counts["b"] == 10

    def test_deterministic(self, frame):
        a = StratifiedSampler("group", 0.3).resample(frame, seed=7)
        b = StratifiedSampler("group", 0.3).resample(frame, seed=7)
        assert a.equals(b)

    def test_no_replacement(self, frame):
        out = StratifiedSampler("group", fraction=1.0).resample(frame, seed=0)
        assert sorted(out["x"].tolist()) == sorted(frame["x"].tolist())

    def test_small_stratum_keeps_at_least_one(self):
        frame = DataFrame.from_dict({"x": [1, 2, 3], "g": ["a", "a", "b"]})
        out = StratifiedSampler("g", fraction=0.1).resample(frame, seed=0)
        assert "b" in value_counts(out, "g")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            StratifiedSampler("g", fraction=0.0)

    def test_in_lifecycle(self):
        frame, spec = load_dataset("germancredit")
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(tuned=False),
            resampler=StratifiedSampler("credit_risk", fraction=0.6),
        ).run()
        assert result.sizes["train"] == pytest.approx(420, abs=2)
        assert result.components["resampler"].startswith("StratifiedSampler")


class TestEncodersInLifecycle:
    @pytest.mark.parametrize(
        "encoder",
        [FrequencyEncoder(), TargetEncoder(smoothing=5.0), SVDEmbeddingEncoder(4)],
        ids=["frequency", "target", "svd-embedding"],
    )
    def test_lifecycle_runs_with_alternative_encoder(self, encoder):
        frame, spec = load_dataset("germancredit")
        result = Experiment(
            frame,
            spec,
            random_seed=0,
            learner=LogisticRegression(tuned=False),
            categorical_encoder=encoder,
        ).run()
        assert result.test_metrics["overall__accuracy"] > 0.55
        assert result.components["categorical_encoder"] == type(encoder).__name__

    def test_target_encoder_fit_on_train_only(self):
        # stays leak-free: the experiment must not crash nor use val/test
        # labels; identical seeds give identical results across reruns
        frame, spec = load_dataset("germancredit")
        runs = [
            Experiment(
                frame,
                spec,
                random_seed=5,
                learner=LogisticRegression(tuned=False),
                categorical_encoder=TargetEncoder(),
            ).run()
            for _ in range(2)
        ]
        assert runs[0].to_json() == runs[1].to_json()

    def test_default_encoder_recorded(self):
        frame, spec = load_dataset("ricci")
        result = Experiment(
            frame, spec, random_seed=0, learner=LogisticRegression(tuned=False)
        ).run()
        assert result.components["categorical_encoder"] == "OneHotEncoder"

"""Unit tests for the featurizer, learners and intervention adapters."""

import numpy as np
import pytest

from repro.core import (
    AdversarialDebiasingLearner,
    CalibratedEqOddsPostProcessor,
    DIRemover,
    DecisionTree,
    Featurizer,
    LogisticRegression,
    NaiveBayes,
    NoIntervention,
    PrejudiceRemoverLearner,
    RejectOptionPostProcessor,
    ReweighingPreProcessor,
)
from repro.datasets import RICCI_SPEC, generate_germancredit, generate_ricci, GERMANCREDIT_SPEC
from repro.fairness import BinaryLabelDatasetMetric
from repro.learn import MinMaxScaler, NoOpScaler, StandardScaler


@pytest.fixture(scope="module")
def ricci():
    return generate_ricci(seed=0)


@pytest.fixture(scope="module")
def german():
    return generate_germancredit(seed=0)


class TestFeaturizer:
    def test_output_shape_and_names(self, ricci):
        featurizer = Featurizer(RICCI_SPEC, StandardScaler()).fit(ricci)
        data = featurizer.transform(ricci)
        assert data.features.shape[0] == 118
        assert data.features.shape[1] == len(featurizer.feature_names_)
        # 3 numeric + (2 position categories + unseen)
        assert data.features.shape[1] == 3 + 3

    def test_scaler_statistics_from_fit_frame_only(self, ricci):
        train = ricci.take(np.arange(60))
        rest = ricci.take(np.arange(60, 118))
        featurizer = Featurizer(RICCI_SPEC, StandardScaler()).fit(train)
        transformed_train = featurizer.transform(train)
        # training numerics standardized exactly; other split is not
        assert abs(transformed_train.features[:, 0].mean()) < 1e-9
        transformed_rest = featurizer.transform(rest)
        assert abs(transformed_rest.features[:, 0].mean()) > 1e-6

    def test_noop_scaler_keeps_raw_scale(self, ricci):
        featurizer = Featurizer(RICCI_SPEC, NoOpScaler()).fit(ricci)
        data = featurizer.transform(ricci)
        assert data.features[:, 0].max() > 60.0

    def test_labels_and_protected(self, ricci):
        featurizer = Featurizer(RICCI_SPEC, StandardScaler()).fit(ricci)
        data = featurizer.transform(ricci)
        assert set(np.unique(data.labels)) == {0.0, 1.0}
        assert data.protected_attribute_names == ["race"]
        assert data.labels.sum() == (ricci["promoted"] == "yes").sum()

    def test_group_dicts(self, ricci):
        featurizer = Featurizer(RICCI_SPEC).fit(ricci)
        assert featurizer.privileged_groups == [{"race": 1.0}]
        assert featurizer.unprivileged_groups == [{"race": 0.0}]

    def test_nan_rejected_with_clear_message(self, ricci):
        broken = ricci.with_values(
            "written", [None] + list(ricci["written"][1:]), kind="numeric"
        )
        featurizer = Featurizer(RICCI_SPEC)
        with pytest.raises(ValueError, match="missing-value handler"):
            featurizer.fit(broken)

    def test_transform_before_fit(self, ricci):
        with pytest.raises(RuntimeError):
            Featurizer(RICCI_SPEC).transform(ricci)

    def test_unseen_category_handled(self, ricci):
        featurizer = Featurizer(RICCI_SPEC).fit(ricci)
        modified = ricci.with_values("position", ["Chief"] * 118)
        data = featurizer.transform(modified)
        assert data.features.shape[1] == len(featurizer.feature_names_)

    def test_minmax_scaler_supported(self, ricci):
        featurizer = Featurizer(RICCI_SPEC, MinMaxScaler()).fit(ricci)
        data = featurizer.transform(ricci)
        numeric = data.features[:, :3]
        assert numeric.min() >= -1e-9 and numeric.max() <= 1.0 + 1e-9


def _annotated(german):
    featurizer = Featurizer(GERMANCREDIT_SPEC, StandardScaler()).fit(german)
    return featurizer.transform(german), featurizer


class TestLearners:
    def test_untuned_lr_predicts_binary_labels(self, german):
        data, _ = _annotated(german)
        model = LogisticRegression(tuned=False).fit_model(data, seed=0)
        predictions = model.predict(data.features)
        assert set(np.unique(predictions)) <= {0.0, 1.0}

    def test_tuned_lr_records_best_params(self, german):
        data, _ = _annotated(german)
        learner = LogisticRegression(
            tuned=True, param_grid={"penalty": ["l2"], "alpha": [0.001, 0.01]}, cv=3
        )
        learner.fit_model(data, seed=0)
        assert learner.last_search_.best_params_["penalty"] == "l2"

    def test_lr_scores_are_probabilities(self, german):
        data, _ = _annotated(german)
        model = LogisticRegression(tuned=False).fit_model(data, seed=0)
        scores = model.predict_scores(data.features)
        assert scores is not None
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_dt_learner(self, german):
        data, _ = _annotated(german)
        learner = DecisionTree(
            tuned=True, param_grid={"max_depth": [2, 4]}, cv=3
        )
        model = learner.fit_model(data, seed=0)
        accuracy = (model.predict(data.features) == data.labels).mean()
        assert accuracy > 0.68

    def test_learner_names(self):
        assert LogisticRegression(tuned=True).name() == "LogisticRegression(tuned)"
        assert DecisionTree(tuned=False).name() == "DecisionTree(default)"

    def test_naive_bayes_learner(self, german):
        data, _ = _annotated(german)
        model = NaiveBayes().fit_model(data, seed=0)
        assert model.predict(data.features).shape == data.labels.shape

    def test_inprocessing_learners(self, german):
        data, _ = _annotated(german)
        for learner in (
            AdversarialDebiasingLearner(num_epochs=5),
            PrejudiceRemoverLearner(eta=1.0, max_iter=50),
        ):
            assert learner.needs_annotated_data
            model = learner.fit_model(data, seed=0)
            scores = model.predict_scores(data.features)
            assert ((scores >= 0) & (scores <= 1)).all()

    def test_seed_reproducibility(self, german):
        data, _ = _annotated(german)
        a = LogisticRegression(tuned=False).fit_model(data, seed=9)
        b = LogisticRegression(tuned=False).fit_model(data, seed=9)
        assert np.array_equal(a.predict(data.features), b.predict(data.features))


class TestInterventionAdapters:
    def test_no_intervention_identity(self, german):
        data, _ = _annotated(german)
        ni = NoIntervention().fit()
        assert ni.transform_train(data) is data
        assert ni.transform_eval(data) is data
        assert ni.apply(data) is data

    def test_reweighing_changes_train_weights_only(self, german):
        data, featurizer = _annotated(german)
        pre = ReweighingPreProcessor().fit(
            data, featurizer.privileged_groups, featurizer.unprivileged_groups, seed=0
        )
        train_out = pre.transform_train(data)
        assert not np.allclose(train_out.instance_weights, data.instance_weights)
        metric = BinaryLabelDatasetMetric(
            train_out, featurizer.unprivileged_groups, featurizer.privileged_groups
        )
        assert metric.statistical_parity_difference() == pytest.approx(0.0, abs=1e-12)
        eval_out = pre.transform_eval(data)
        assert np.allclose(eval_out.instance_weights, data.instance_weights)

    def test_diremover_repairs_eval_features_too(self, german):
        data, featurizer = _annotated(german)
        pre = DIRemover(repair_level=1.0).fit(
            data, featurizer.privileged_groups, featurizer.unprivileged_groups, seed=0
        )
        train_out = pre.transform_train(data)
        eval_out = pre.transform_eval(data)
        assert not np.allclose(train_out.features, data.features)
        assert np.allclose(train_out.features, eval_out.features)

    def test_diremover_name_carries_level(self):
        assert DIRemover(0.5).name() == "DIRemover(0.5)"

    def test_postprocessor_adapters_fit_and_apply(self, german):
        data, featurizer = _annotated(german)
        model = LogisticRegression(tuned=False).fit_model(data, seed=0)
        pred = data.with_predictions(
            labels=model.predict(data.features),
            scores=model.predict_scores(data.features),
        )
        for post in (
            RejectOptionPostProcessor(num_class_thresh=8, num_ROC_margin=8),
            CalibratedEqOddsPostProcessor(),
        ):
            post.fit(
                data, pred, featurizer.privileged_groups,
                featurizer.unprivileged_groups, seed=0,
            )
            adjusted = post.apply(pred)
            assert adjusted.num_instances == data.num_instances

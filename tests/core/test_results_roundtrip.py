"""ResultsStore round-trip coverage: to_json → load → extend preserves
every record and run_key exactly (including NaN metrics and optional
strata), so resume and registry-metric linkage can trust the store."""

import math

import pytest

from repro.core import ResultsStore
from repro.core.results import CandidateResult, RunResult


def _result(seed: int, run_key=None, with_nan=False) -> RunResult:
    metric = float("nan") if with_nan else 0.25 + seed / 100.0
    candidates = [
        CandidateResult(
            learner=f"learner-{i}",
            validation_metrics={"overall__accuracy": 0.7 + i / 10.0, "odd": metric},
            train_metrics={"overall__accuracy": 0.9},
            best_params={"max_depth": 3 + i} if i else None,
        )
        for i in range(2)
    ]
    return RunResult(
        dataset="synthetic",
        random_seed=seed,
        components={"learners": "a,b", "pre_processor": "NoIntervention"},
        candidates=candidates,
        best_index=1,
        test_metrics={"overall__accuracy": 0.81, "group__disparate_impact": metric},
        test_metrics_incomplete={"overall__accuracy": 0.5} if seed % 2 else {},
        test_metrics_complete={"overall__accuracy": 0.9} if seed % 2 else {},
        sizes={"train": 70, "validation": 10, "test": 20},
        run_key=run_key,
    )


def _equal(a: RunResult, b: RunResult) -> bool:
    return _canon(a.to_dict()) == _canon(b.to_dict())


def _canon(value):
    """NaN-tolerant structural normal form for comparison."""
    if isinstance(value, dict):
        return {k: _canon(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_canon(v) for v in value]
    if isinstance(value, float) and math.isnan(value):
        return "__nan__"
    return value


class TestRunResultJson:
    def test_json_roundtrip_exact(self):
        original = _result(3, run_key="k3")
        restored = RunResult.from_json(original.to_json())
        assert _equal(original, restored)
        assert restored.run_key == "k3"
        assert restored.best_candidate.learner == "learner-1"

    def test_nan_metrics_survive(self):
        original = _result(4, run_key="k4", with_nan=True)
        restored = RunResult.from_json(original.to_json())
        assert math.isnan(restored.test_metrics["group__disparate_impact"])
        assert math.isnan(restored.candidates[0].validation_metrics["odd"])

    def test_missing_optional_fields_default(self):
        minimal = {
            "dataset": "d",
            "random_seed": 0,
            "components": {},
            "candidates": [
                {"learner": "l", "validation_metrics": {"overall__accuracy": 0.5}}
            ],
            "best_index": 0,
            "test_metrics": {},
        }
        import json

        restored = RunResult.from_json(json.dumps(minimal))
        assert restored.test_metrics_incomplete == {}
        assert restored.sizes == {}
        assert restored.run_key is None


class TestStoreRoundtrip:
    def test_extend_load_extend_preserves_everything(self, tmp_path):
        results = [
            _result(i, run_key=f"key-{i}", with_nan=(i == 2)) for i in range(5)
        ]
        first = ResultsStore(str(tmp_path / "a.jsonl"))
        first.extend(results)

        loaded = first.load()
        assert len(loaded) == len(results)
        for original, restored in zip(results, loaded):
            assert _equal(original, restored)
        assert first.run_keys() == {f"key-{i}" for i in range(5)}

        # write the loaded records into a second store: byte-level parity
        second = ResultsStore(str(tmp_path / "b.jsonl"))
        second.extend(loaded)
        reloaded = second.load()
        for original, restored in zip(results, reloaded):
            assert _equal(original, restored)
        assert second.run_keys() == first.run_keys()
        with open(first.path) as a, open(second.path) as b:
            assert a.read() == b.read()

    def test_append_and_extend_interleave(self, tmp_path):
        store = ResultsStore(str(tmp_path / "c.jsonl"))
        store.append(_result(0, run_key="k0"))
        store.extend([_result(1, run_key="k1"), _result(2)])
        loaded = store.load()
        assert [r.random_seed for r in loaded] == [0, 1, 2]
        # a result without a run_key loads but contributes no key
        assert store.run_keys() == {"k0", "k1"}

    def test_extend_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        store = ResultsStore(str(tmp_path / "atomic.jsonl"))
        store.extend([_result(0, run_key="k0")])
        store.extend([_result(1, run_key="k1")])
        assert store.run_keys() == {"k0", "k1"}
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.jsonl"]

    def test_crashed_extend_preserves_prior_contents(self, tmp_path, monkeypatch):
        import os

        store = ResultsStore(str(tmp_path / "crash.jsonl"))
        store.extend([_result(0, run_key="k0")])
        before = open(store.path).read()

        # a crash at the commit point (power loss before rename) must
        # leave the previous store bytes intact and no stray temp file
        def refuse(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", refuse)
        with pytest.raises(OSError, match="simulated crash"):
            store.extend([_result(1, run_key="k1")])
        monkeypatch.undo()

        assert open(store.path).read() == before
        assert store.run_keys() == {"k0"}
        assert [p.name for p in tmp_path.iterdir()] == ["crash.jsonl"]

    def test_torn_final_line_recoverable(self, tmp_path):
        store = ResultsStore(str(tmp_path / "d.jsonl"))
        store.extend([_result(0, run_key="k0")])
        with open(store.path, "a") as handle:
            handle.write('{"dataset": "torn", "random_se')
        with pytest.raises(ValueError):
            store.load(strict=True)
        recovered = store.load(strict=False)
        assert len(recovered) == 1
        assert recovered[0].run_key == "k0"

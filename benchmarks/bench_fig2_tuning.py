"""Figure 2: impact of hyperparameter tuning on accuracy/fairness variability.

Regenerates all six panels (a-f): tuned vs untuned logistic regression and
decision trees on germancredit, under six interventions (none, di-remover
0.5/1.0, reweighing, reject-option, calibrated equalized odds), reporting
accuracy against DI / FNRD / FPRD.

Paper shape: tuned runs (red dots) reach higher accuracy and lower variance
of the fairness outcomes than untuned runs (gray dots) in many cells.
"""

import pytest

from repro.analysis import (
    figure2_series,
    figure2_shape_checks,
    plot_figure2_panel,
    render_figure2,
)
from repro.core import (
    CalibratedEqOddsPostProcessor,
    DIRemover,
    DecisionTree,
    GridSpec,
    LogisticRegression,
    NoIntervention,
    RejectOptionPostProcessor,
    ReweighingPreProcessor,
    run_grid,
)

from _config import FIG2_SEEDS, PAPER_SCALE, QUICK_DT_GRID, emit

INTERVENTIONS = [
    NoIntervention,
    lambda: DIRemover(0.5),
    lambda: DIRemover(1.0),
    ReweighingPreProcessor,
    lambda: RejectOptionPostProcessor(num_class_thresh=20, num_ROC_margin=15),
    lambda: CalibratedEqOddsPostProcessor(),
]


def _learners():
    dt_grid = None if PAPER_SCALE else QUICK_DT_GRID
    return [
        lambda: LogisticRegression(tuned=False),
        lambda: LogisticRegression(tuned=True),
        lambda: DecisionTree(tuned=False),
        lambda: DecisionTree(tuned=True, param_grid=dt_grid),
    ]


def _sweep():
    grid = GridSpec(
        seeds=FIG2_SEEDS, learners=_learners(), interventions=INTERVENTIONS
    )
    return run_grid("germancredit", grid)


@pytest.mark.benchmark(group="figure2")
def test_fig2_tuning_variability(benchmark, capsys):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    panels = figure2_series(results)
    checks = figure2_shape_checks(panels)
    emit(
        "figure2_germancredit_tuning",
        render_figure2(panels)
        + "\n\nshape checks: "
        + f"variance_reduced_fraction={checks['variance_reduced_fraction']:.2f}, "
        + f"accuracy_not_hurt_fraction={checks['accuracy_not_hurt_fraction']:.2f} "
        + f"over {checks['panels']} panels"
        + "\n\n"
        + plot_figure2_panel(panels, "LogisticRegression", "no intervention", "DI"), capsys=capsys)
    # the paper's headline, held loosely: tuning helps accuracy in most
    # panels and reduces fairness variance in many of them ("in many cases",
    # §5.1); the variance estimate needs paper-scale seeds to stabilize
    assert checks["accuracy_not_hurt_fraction"] >= 0.7
    assert checks["variance_reduced_fraction"] >= (0.5 if PAPER_SCALE else 0.4)

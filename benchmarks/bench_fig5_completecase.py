"""Figure 5: complete-case analysis vs inclusion of imputed records (adult).

Regenerates panels (a) and (b): accuracy and disparate impact when
incomplete records are removed (complete-case analysis, gray dots) versus
retained with learned imputation (red dots), for both baselines and three
interventions.

Paper shape: including imputed records gives minimally higher accuracy and
no significant positive or negative impact on disparate impact.
"""

import numpy as np
import pytest

from repro.analysis import figure5_series, render_figure5
from repro.core import (
    CompleteCaseAnalysis,
    DIRemover,
    DatawigImputer,
    DecisionTree,
    GridSpec,
    LogisticRegression,
    NoIntervention,
    ReweighingPreProcessor,
    run_grid,
)

from _config import ADULT_SIZE, FIG45_SEEDS, PAPER_SCALE, emit


def _learners():
    if PAPER_SCALE:
        return [
            lambda: LogisticRegression(tuned=True),
            lambda: DecisionTree(tuned=True),
        ]
    return [
        lambda: LogisticRegression(tuned=False),
        lambda: DecisionTree(tuned=True, param_grid={"max_depth": [5, 10]}, cv=3),
    ]


def _sweep():
    grid = GridSpec(
        seeds=FIG45_SEEDS,
        learners=_learners(),
        interventions=[
            NoIntervention,
            ReweighingPreProcessor,
            lambda: DIRemover(1.0),
        ],
        missing_value_handlers=[
            lambda: CompleteCaseAnalysis(),
            lambda: DatawigImputer(),
        ],
    )
    return run_grid("adult", grid, dataset_size=ADULT_SIZE)


@pytest.mark.benchmark(group="figure5")
def test_fig5_complete_case_vs_imputation(benchmark, capsys):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    panels = figure5_series(results)
    emit("figure5_adult_completecase", render_figure5(panels), capsys=capsys)
    # inclusion of imputed records must not collapse accuracy or DI
    for panel in panels.values():
        s = panel["summary"]
        assert (
            s["imputed_accuracy"]["mean"] > s["complete_case_accuracy"]["mean"] - 0.05
        )
        di_gap = abs(s["imputed_DI"]["mean"] - s["complete_case_DI"]["mean"])
        assert np.isnan(di_gap) or di_gap < 0.3

"""Staged-engine speedup: serial vs parallel vs shared-preparation cache.

Compares three backends on two grids:

* a quick-scale slice of the Figure-2 tuning grid (germancredit, tuned +
  untuned learners x six interventions) — training-dominated, where the
  process-pool backend wins once multiple cores are available;
* a Figure-4-style imputation grid (adult + learned imputer) — preparation-
  dominated, where the shared-preparation cache alone cuts wall-clock
  superlinearly in learner count, independent of core count.

Backends:

``serial (seed)``
    ``SerialExecutor(share_preparation=False)``: every run recomputes the
    full split → resample → impute → featurize pipeline, byte-compatible
    with the pre-engine serial runner.
``serial+cache``
    ``SerialExecutor()``: one preparation per (seed, handler, scaler)
    group, one fitted pre-processor per (group, intervention).
``parallel+cache``
    ``ParallelExecutor(jobs=4)``: preparation groups fanned out over a
    process pool, same caching inside each worker.

All backends must emit identical ``RunResult`` records; the benchmark
asserts that and a >= 2x speedup of ``parallel+cache`` over the seed-style
serial runner wherever the hardware allows it (the preparation-bound grid
reaches 2x even on a single core; the training-bound Figure-2 grid
additionally needs >= 2 usable cores for the pool to bite).
"""

import os
import time

import pytest

from repro.core import (
    CalibratedEqOddsPostProcessor,
    DatawigImputer,
    DecisionTree,
    DIRemover,
    GridSpec,
    LogisticRegression,
    NaiveBayes,
    NoIntervention,
    ParallelExecutor,
    RejectOptionPostProcessor,
    ReweighingPreProcessor,
    SerialExecutor,
    run_grid,
)
from repro.datasets import load_dataset

from _config import PAPER_SCALE, QUICK_DT_GRID, emit

JOBS = 4
EFFECTIVE_CORES = min(JOBS, os.cpu_count() or 1)

FIG2_INTERVENTIONS = [
    NoIntervention,
    lambda: DIRemover(0.5),
    lambda: DIRemover(1.0),
    ReweighingPreProcessor,
    lambda: RejectOptionPostProcessor(num_class_thresh=20, num_ROC_margin=15),
    lambda: CalibratedEqOddsPostProcessor(),
]


def _fig2_grid():
    """The Figure-2 axes at benchmark scale (2 seeds quick, 16 paper)."""
    dt_grid = None if PAPER_SCALE else QUICK_DT_GRID
    return GridSpec(
        seeds=list(range(16)) if PAPER_SCALE else [0, 3],
        learners=[
            lambda: LogisticRegression(tuned=False),
            lambda: LogisticRegression(tuned=True),
            lambda: DecisionTree(tuned=False),
            lambda: DecisionTree(tuned=True, param_grid=dt_grid),
        ],
        interventions=FIG2_INTERVENTIONS,
    )


def _imputation_grid():
    """Figure-4-style grid: expensive learned imputation, cheap learners."""
    return GridSpec(
        seeds=list(range(8)) if PAPER_SCALE else [0, 1],
        learners=[
            lambda: LogisticRegression(tuned=False),
            lambda: DecisionTree(tuned=False),
            lambda: NaiveBayes(),
        ],
        interventions=[NoIntervention, ReweighingPreProcessor],
        missing_value_handlers=[lambda: DatawigImputer()],
    )


BACKENDS = [
    ("serial (seed)", lambda: SerialExecutor(share_preparation=False)),
    ("serial+cache", lambda: SerialExecutor()),
    ("parallel+cache", lambda: ParallelExecutor(jobs=JOBS)),
]


def _compare_backends(dataset, grid):
    frame_spec = load_dataset(dataset[0], n=dataset[1])
    rows = []
    reference = None
    baseline = None
    for label, make_executor in BACKENDS:
        start = time.perf_counter()
        results = run_grid(frame_spec, grid, executor=make_executor())
        elapsed = time.perf_counter() - start
        payload = [r.to_json() for r in results]
        if reference is None:
            reference, baseline = payload, elapsed
        else:
            assert payload == reference, f"{label} diverged from the serial backend"
        rows.append((label, len(results), elapsed, baseline / elapsed))
    return rows


def _render(title, rows):
    lines = [f"{title}", f"{'backend':<16} {'runs':>5} {'seconds':>9} {'speedup':>8}"]
    for label, count, elapsed, speedup in rows:
        lines.append(f"{label:<16} {count:>5} {elapsed:>9.2f} {speedup:>7.2f}x")
    return "\n".join(lines)


@pytest.mark.benchmark(group="executors")
def test_executor_speedup(benchmark, capsys):
    def comparison():
        fig2 = _compare_backends(("germancredit", None), _fig2_grid())
        imputation = _compare_backends(("adult", None if PAPER_SCALE else 3000), _imputation_grid())
        return fig2, imputation

    fig2, imputation = benchmark.pedantic(comparison, rounds=1, iterations=1)
    emit(
        "executors_speedup",
        _render("figure-2 slice (germancredit, training-bound)", fig2)
        + "\n\n"
        + _render("imputation grid (adult, preparation-bound)", imputation)
        + f"\n\ncores available: {os.cpu_count()}, jobs: {JOBS}",
        capsys=capsys,
    )

    parallel_fig2 = fig2[-1][-1]
    parallel_imputation = imputation[-1][-1]
    # the preparation cache alone must deliver 2x on the prep-bound grid,
    # one core is enough
    assert parallel_imputation >= 2.0
    # the training-bound Fig-2 grid needs actual parallel hardware for 2x;
    # on a single core the engine must at least never be slower
    if EFFECTIVE_CORES >= 2:
        assert parallel_fig2 >= 2.0
    else:
        assert parallel_fig2 >= 0.9

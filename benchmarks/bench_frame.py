"""Micro-benchmarks for the frame substrate hot paths.

Covers the row-at-a-time anti-pattern sites that the dictionary-encoding
refactor vectorized: categorical column construction, one-hot fit/transform,
group-by masks, CSV round-trip, and row selection — all on Adult-sized data.

Usage::

    PYTHONPATH=src python benchmarks/bench_frame.py                    # print table
    PYTHONPATH=src python benchmarks/bench_frame.py --record baseline  # object-array numbers
    PYTHONPATH=src python benchmarks/bench_frame.py --record current   # coded-column numbers
    PYTHONPATH=src python benchmarks/bench_frame.py --scale            # 100k/1M chunked spills
    PYTHONPATH=src python benchmarks/bench_frame.py --smoke            # tiny CI sanity run

``--record`` merges the timings into ``benchmarks/BENCH_frame.json``
under the given phase key and, when both phases are present, recomputes the
per-benchmark speedup table. ``--scale`` writes synthetic inflations of
adult at 100k and 1M rows to CSV, times the whole-file read against the
chunked spill into a memory-mapped store plus the store reload, and
records the points under the ``scale`` key. ``--smoke`` runs every
benchmark once at a small scale and verifies correctness invariants
(including chunked-reader and spill-store round trips byte-identical to
``read_csv``), so CI catches a vectorized path silently regressing to a
Python loop (or breaking outright) without paying for full-size timing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import generate_adult
from repro.frame import (
    Column,
    concat_rows,
    group_missing_rates,
    groupby_aggregate,
    read_csv,
    read_csv_chunked,
    spill_csv,
    write_csv,
)
from repro.learn import OneHotEncoder

# committed next to the benchmark (benchmarks/results/ is gitignored) so
# the perf trajectory is recorded in-repo
BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_frame.json")

FULL_ROWS = 32561
SMOKE_ROWS = 2000

SCALE_POINTS = {"spill_100k": 100_000, "spill_1M": 1_000_000}
SCALE_CHUNK_ROWS = 65_536


def _encoder_input(frame, names):
    """What the featurizer hands the encoder in this phase of the codebase.

    Coded columns are passed as :class:`Column` objects (the fast path);
    the pre-refactor object-array implementation gets raw value arrays.
    """
    cols = [frame.col(c) for c in names]
    if hasattr(cols[0], "codes"):
        return cols
    return [c.values for c in cols]


def _time(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmarks(n_rows: int, repeats: int) -> dict:
    frame = generate_adult(n=n_rows, seed=0)
    categorical = [
        "workclass", "education", "marital_status", "occupation",
        "relationship", "race", "sex", "native_country",
    ]
    # raw object arrays (decoded view) feed the construction benchmark
    raw = {name: np.array(list(frame[name]), dtype=object) for name in categorical}

    timings = {}

    timings["column_construction"] = _time(
        lambda: [Column.categorical(name, raw[name]) for name in categorical], repeats
    )

    train = frame.mask(np.arange(n_rows) < int(0.7 * n_rows))
    rest = frame.mask(np.arange(n_rows) >= int(0.7 * n_rows))
    fit_input = _encoder_input(train, categorical)
    transform_input = _encoder_input(rest, categorical)

    timings["onehot_fit"] = _time(lambda: OneHotEncoder().fit(fit_input), repeats)
    encoder = OneHotEncoder().fit(fit_input)
    timings["onehot_transform"] = _time(lambda: encoder.transform(transform_input), repeats)

    def _groupby():
        group_missing_rates(frame, "race", "native_country")
        groupby_aggregate(frame, "education", "age", np.mean)

    timings["groupby_masks"] = _time(_groupby, repeats)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "adult.csv")

        def _roundtrip():
            write_csv(frame, path)
            read_csv(path, kinds=frame.kinds())

        timings["csv_roundtrip"] = _time(_roundtrip, repeats)

    rng = np.random.default_rng(0)
    order = rng.permutation(n_rows)
    keep = rng.random(n_rows) < 0.5
    timings["take_mask"] = _time(lambda: (frame.take(order), frame.mask(keep)), repeats)

    return timings


def run_scale_benchmarks(repeats: int) -> dict:
    """Time whole-file reads vs chunked spills at 100k/1M rows."""
    from repro.datasets import synthesize

    results = {}
    for name, n in SCALE_POINTS.items():
        frame, _ = synthesize("adult", n, seed=0)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "synth.csv")
            write_csv(frame, path)
            csv_bytes = os.path.getsize(path)
            read_s = _time(lambda: read_csv(path), repeats)
            store_root = os.path.join(tmp, "store")
            spill_s = _time(
                lambda: spill_csv(
                    path, store_root, chunk_rows=SCALE_CHUNK_ROWS, overwrite=True
                ),
                repeats,
            )
            store = spill_csv(
                path, store_root, chunk_rows=SCALE_CHUNK_ROWS, overwrite=True
            )
            # mmap reload: the payoff of spilling — reopening is ~free
            reload_s = _time(lambda: store.frame(), repeats)
        results[name] = {
            "rows": n,
            "csv_bytes": csv_bytes,
            "chunk_rows": SCALE_CHUNK_ROWS,
            "read_csv_s": round(read_s, 4),
            "spill_s": round(spill_s, 4),
            "store_reload_s": round(reload_s, 4),
        }
        print(
            f"{name:12s} read_csv {read_s:8.3f}s  chunked spill {spill_s:8.3f}s  "
            f"mmap reload {reload_s:8.4f}s"
        )
    return results


def check_invariants(n_rows: int) -> None:
    """Correctness spot-checks on the benchmarked paths (CI smoke gate)."""
    frame = generate_adult(n=n_rows, seed=0)
    encoder = OneHotEncoder().fit(_encoder_input(frame, ["race", "sex"]))
    out = encoder.transform(_encoder_input(frame, ["race", "sex"]))
    # every row one-hot in each feature block
    assert np.allclose(out.sum(axis=1), 2.0), "one-hot rows must sum to #features"
    rates = group_missing_rates(frame, "race", "native_country")
    assert set(rates) == set(v for v in frame.col("race").unique())
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "adult.csv")
        write_csv(frame, path)
        back = read_csv(path, kinds=frame.kinds())
        assert back.equals(frame), "CSV round-trip must be lossless"
        # the out-of-core paths are exact, not approximate: chunked
        # batches concatenate to the whole-file read, and the spilled
        # store reloads it column for column
        chunked = concat_rows(
            list(read_csv_chunked(path, chunk_rows=257, kinds=frame.kinds()))
        )
        assert chunked.equals(back), "chunked read drifted from read_csv"
        store = spill_csv(
            path, os.path.join(tmp, "store"), chunk_rows=257, kinds=frame.kinds()
        )
        assert store.frame().equals(back), "spilled store drifted from read_csv"


def render(timings: dict, n_rows: int) -> str:
    lines = [f"bench_frame (n={n_rows})", "-" * 44]
    for name, seconds in timings.items():
        lines.append(f"{name:24s} {seconds * 1e3:10.2f} ms")
    return "\n".join(lines)


def record(phase: str, timings: dict, n_rows: int, repeats: int) -> dict:
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data.setdefault("meta", {})[phase] = {"n_rows": n_rows, "repeats": repeats}
    data[phase] = timings
    if "baseline" in data and "current" in data:
        data["speedup"] = {
            name: round(data["baseline"][name] / data["current"][name], 2)
            for name in data["current"]
            if name in data["baseline"] and data["current"][name] > 0
        }
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", choices=["baseline", "current"])
    parser.add_argument("--smoke", action="store_true", help="tiny run + invariant checks")
    parser.add_argument(
        "--scale",
        action="store_true",
        help="time 100k/1M-row chunked spills and record them",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    if args.scale:
        results = run_scale_benchmarks(args.repeats or 1)
        data = {}
        if os.path.exists(BENCH_JSON):
            with open(BENCH_JSON) as handle:
                data = json.load(handle)
        data["scale"] = results
        with open(BENCH_JSON, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded scale points to {BENCH_JSON}")
        return 0

    n_rows = args.rows or (SMOKE_ROWS if args.smoke else FULL_ROWS)
    repeats = args.repeats or (1 if args.smoke else 3)

    if args.smoke:
        check_invariants(n_rows)
    timings = run_benchmarks(n_rows, repeats)
    print(render(timings, n_rows))
    if args.record:
        data = record(args.record, timings, n_rows, repeats)
        if "speedup" in data:
            print("\nspeedup vs baseline:")
            for name, ratio in sorted(data["speedup"].items()):
                print(f"  {name:24s} {ratio:6.2f}x")
    if args.smoke:
        print("\nsmoke checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

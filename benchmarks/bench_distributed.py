"""Distributed grid benchmark: work-queue executor vs serial execution.

Runs an imputation-heavy germancredit grid (tuned decision tree × two
missing-value handlers × interventions × seeds — the preparation-group
shape the paper's studies produce) through :class:`SerialExecutor`, then
through :class:`DistributedExecutor` with 1, 2 and 4 forked localhost
workers, asserting before any floor is consulted that every distributed
run returns results **byte-identical** to the serial baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed.py           # record
    PYTHONPATH=src python benchmarks/bench_distributed.py --smoke   # CI gate

``--smoke`` runs a tiny grid through the coordinator/worker path,
asserts byte-identity, and enforces the committed floors in
``BENCH_distributed.json``: 4 localhost workers must deliver >= 2.5x
serial wall-clock — but only when the *recording* machine had >= 4 cores
(``meta.cpu_count`` is committed alongside, so single-core runners log a
machine-readable skip instead of failing a floor physics forbids), plus
an unconditional overhead floor: one distributed worker must stay within
2x of serial (the protocol must not eat the work).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (
    DatawigImputer,
    DecisionTree,
    DIRemover,
    DistributedExecutor,
    GridSpec,
    LogisticRegression,
    ModeImputer,
    NoIntervention,
    SerialExecutor,
)
from repro.core.executors import ExecutionPlan, plan_groups
from repro.datasets import load_dataset

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_distributed.json")

#: ISSUE acceptance criterion: 4 localhost workers >= 2.5x serial, binding
#: only where the recording machine can actually run 4 workers in parallel
DIST_FLOOR = 2.5
DIST_FLOOR_WORKERS = 4

#: unconditional: the coordinator/lease/stream protocol must cost < 2x
#: serial with a single worker doing all the work
OVERHEAD_FLOOR = 0.5

WORKER_COUNTS = (1, 2, 4)
LEASE_SECONDS = 30.0


def _grid(smoke: bool) -> GridSpec:
    if smoke:
        return GridSpec(
            seeds=[0, 1],
            learners=[lambda: LogisticRegression(tuned=False)],
            interventions=[NoIntervention, lambda: DIRemover(0.5)],
            missing_value_handlers=[lambda: ModeImputer()],
        )
    # 4 seeds x 2 handlers = 8 preparation groups of 2 tuned-DT runs each:
    # enough per-group weight that leases amortize, enough groups that a
    # 4-worker queue stays busy
    return GridSpec(
        seeds=[0, 1, 2, 3],
        learners=[lambda: DecisionTree(tuned=True)],
        interventions=[NoIntervention, lambda: DIRemover(0.5)],
        missing_value_handlers=[lambda: ModeImputer(), lambda: DatawigImputer()],
    )


def _timed_run(executor, plan):
    started = time.perf_counter()
    results = executor.run(plan)
    return time.perf_counter() - started, results


def _assert_byte_identical(label, results, baseline):
    got = [r.to_json() for r in results]
    want = [r.to_json() for r in baseline]
    assert got == want, (
        f"{label} results are not byte-identical to serial execution "
        f"({sum(a != b for a, b in zip(got, want))} of {len(want)} differ)"
    )


def _stage_timings(plan, baseline) -> dict:
    """One traced 2-worker round, run *after* (and outside) the timed
    rounds: forked workers stream spans to a temp trace dir, the files
    must stitch into a single tree, and the per-stage totals across
    coordinator + workers are committed alongside the wall-clock numbers
    so the recorded speedups carry their own time breakdown."""
    import tempfile

    from repro import telemetry
    from repro.telemetry import trace as trace_tools

    with tempfile.TemporaryDirectory() as tmp:
        telemetry.reset_for_tests()
        telemetry.configure(trace_dir=tmp)
        try:
            executor = DistributedExecutor(
                workers=2, lease_seconds=LEASE_SECONDS
            )
            results = executor.run(plan)
            _assert_byte_identical("distributed(traced)", results, baseline)
            summary = trace_tools.summarize(tmp)
        finally:
            telemetry.reset_for_tests()
    problem = trace_tools.check_single_tree(summary)
    assert problem is None, (
        f"traced distributed run did not stitch into one tree: {problem}"
    )
    return {
        "workers": 2,
        "processes": len(summary["processes"]),
        "spans": summary["spans"],
        "stages": summary["stage_totals"],
    }


def run_benchmarks(smoke: bool) -> dict:
    frame, spec = load_dataset("germancredit")
    grid = _grid(smoke)
    plan = ExecutionPlan.for_grid(frame, spec, grid)
    n_groups = len(plan_groups(list(plan.configs)))

    serial_seconds, baseline = _timed_run(SerialExecutor(), plan)

    worker_counts = (2,) if smoke else WORKER_COUNTS
    measurements = {"serial_seconds": round(serial_seconds, 3)}
    speedup = {}
    requeued = 0
    for workers in worker_counts:
        executor = DistributedExecutor(
            workers=workers, lease_seconds=LEASE_SECONDS
        )
        seconds, results = _timed_run(executor, plan)
        _assert_byte_identical(f"distributed({workers})", results, baseline)
        stats = executor.stats
        assert stats["completed"] == stats["total"] == len(baseline)
        requeued += stats["requeued"]
        measurements[f"dist{workers}_seconds"] = round(seconds, 3)
        speedup[f"dist{workers}_vs_serial"] = round(serial_seconds / seconds, 2)

    return {
        "measurements": measurements,
        "speedup": speedup,
        "stage_timings": _stage_timings(plan, baseline),
        "meta": {
            "dataset": "germancredit",
            "n_rows": frame.num_rows,
            "grid_runs": len(plan.configs),
            "prep_groups": n_groups,
            "worker_counts": list(worker_counts),
            "lease_seconds": LEASE_SECONDS,
            "keys_requeued": requeued,
            "cpu_count": os.cpu_count(),
            "smoke": smoke,
        },
        "dist_floor": _dist_floor_status(os.cpu_count()),
    }


def _dist_floor_status(cpu_count) -> dict:
    """Machine-readable record of whether the 4-worker floor was measurable.

    Committed into BENCH_distributed.json so the CI gate (and any future
    re-record on real multi-core hardware) distinguishes "not measured on
    this machine" from "regressed": ``skipped`` is true exactly when the
    recording machine cannot physically run 4 workers in parallel.
    """
    cores = cpu_count or 1
    skipped = cores < DIST_FLOOR_WORKERS
    status = {
        "floor": DIST_FLOOR,
        "requires_workers": DIST_FLOOR_WORKERS,
        "skipped": skipped,
    }
    if skipped:
        status["reason"] = (
            f"recording machine had cpu_count={cores}; the "
            f"{DIST_FLOOR}x floor only binds at >= "
            f"{DIST_FLOOR_WORKERS} cores"
        )
    return status


def check_floors() -> None:
    with open(BENCH_JSON) as handle:
        recorded = json.load(handle)
    meta = recorded["meta"]
    value = recorded["speedup"]["dist1_vs_serial"]
    assert value >= OVERHEAD_FLOOR, (
        f"committed dist1_vs_serial {value} fell below the overhead floor "
        f"{OVERHEAD_FLOOR}: the lease/stream protocol is eating the work; "
        "re-record BENCH_distributed.json from an implementation that "
        "restores it"
    )
    status = recorded.get("dist_floor") or _dist_floor_status(
        meta.get("cpu_count")
    )
    if not status["skipped"]:
        value = recorded["speedup"][f"dist{DIST_FLOOR_WORKERS}_vs_serial"]
        assert value >= DIST_FLOOR, (
            f"committed dist{DIST_FLOOR_WORKERS}_vs_serial speedup {value} "
            f"fell below its floor {DIST_FLOOR} on a "
            f"{meta.get('cpu_count')}-core recording machine; re-record "
            "BENCH_distributed.json from an implementation that restores it"
        )
    else:
        print(f"distributed floor skipped: {status['reason']}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + byte-identity + committed floors",
    )
    args = parser.parse_args()

    results = run_benchmarks(smoke=args.smoke)
    print(json.dumps(results, indent=2, sort_keys=True))

    if args.smoke:
        check_floors()
        print(
            "\nsmoke checks passed (byte-identity to serial, all keys "
            "merged, committed speedup floors)"
        )
        return 0

    with open(BENCH_JSON, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nrecorded to {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""HTTP load benchmark: micro-batched serving vs the thread-per-request path.

Spins up four servers over the *same* exported pipeline and hammers each
with concurrent single-record ``POST /score`` traffic from
persistent-connection client threads:

* **legacy** — the pre-micro-batching serving stack: HTTP/1.0 (a fresh
  connection and handler thread per request), unbuffered header writes,
  ``allow_nan`` JSON, and one inline ``score_record`` call per request;
* **unbatched** — the hardened plumbing (keep-alive, buffered single-write
  responses, TCP_NODELAY, strict JSON) still scoring inline per request;
* **batched** — the same plumbing with the micro-batching core coalescing
  concurrent requests into vectorized ``score_frame`` passes;
* **fleet** — the multi-worker round: a pre-forked ``ServingFleet`` of
  batched workers sharing one port (the pipeline is loaded once pre-fork
  and shared copy-on-write), traffic only starts once ``/healthz``
  reports the whole fleet alive.

Every response is decoded with a strict JSON parser (bare ``NaN`` /
``Infinity`` tokens fail the run), and both the batched server's and the
fleet's response *bytes* are compared against locally computed
``score_record`` responses before any timing starts.

Usage::

    PYTHONPATH=src python benchmarks/bench_http.py            # measure + record
    PYTHONPATH=src python benchmarks/bench_http.py --smoke    # tiny CI gate

``--smoke`` runs a short burst, asserts the correctness invariants, and
enforces the committed speedup floors in ``BENCH_http.json`` (>= 3x
sustained single-record throughput for the micro-batching server vs the
legacy thread-per-request path; >= 2.5x the 1-worker batched server for a
4-worker fleet, enforced only when the recording machine had >= 4 cores —
``meta`` records ``cpu_count``/``fleet_workers`` so single-core runners
log a skip instead of failing a floor physics forbids them to meet).
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import DecisionTree, Experiment, ModeImputer
from repro.datasets import load_dataset
from repro.serve import (
    FairnessMonitor,
    ModelRegistry,
    ScoringEngine,
    ScoringService,
    ServingFleet,
    dumps_strict,
    make_server,
)

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_http.json")

# floors enforced by --smoke against the committed trajectory; the 3x
# batched-vs-legacy floor is the ISSUE's acceptance criterion
SPEEDUP_FLOORS = {"batched_vs_legacy": 3.0, "unbatched_vs_legacy": 1.5}

# the multi-worker floor only binds when the fleet could actually spread
# across cores: a 4-worker fleet on a >= 4-core machine must deliver
# >= 2.5x the 1-worker batched server (ISSUE 6 acceptance criterion)
FLEET_FLOOR = 2.5
FLEET_FLOOR_WORKERS = 4

ADULT_ROWS = 4000
SMOKE_ROWS = 1200
MAX_BATCH = 64
MAX_WAIT_MS = 2.0


def _fleet_size() -> int:
    """4 workers where the cores exist; still >= 2 on small machines so
    the fleet path itself (fork, port sharing, aggregation) is exercised
    everywhere the benchmark runs."""
    return max(2, min(FLEET_FLOOR_WORKERS, os.cpu_count() or 1))


def _strict_loads(data):
    def refuse(token):
        raise ValueError(f"non-JSON constant {token!r} in response")

    return json.loads(data, parse_constant=refuse)


# ----------------------------------------------------------------------
# pipeline + servers
# ----------------------------------------------------------------------
def _build_pipeline(n_rows: int, root: str):
    frame, spec = load_dataset("adult", n=n_rows)
    experiment = Experiment(
        frame=frame,
        spec=spec,
        random_seed=1,
        learner=DecisionTree(tuned=False),
        missing_value_handler=ModeImputer(),
    )
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    registry = ModelRegistry(root)
    experiment.export_pipeline(prepared, trained, result, registry=registry)
    model_id = registry.list_models()[0]["model_id"]
    pipeline = ModelRegistry(root).load_pipeline(model_id)
    # complete records only: every server must score every request
    complete = frame.dropna(spec.feature_columns)
    return pipeline, complete


def _records(frame, limit):
    decoded = {c: frame.col(c).values for c in frame.columns}
    return [
        {
            c: (v.item() if hasattr(v, "item") else v)
            for c, v in ((name, decoded[name][i]) for name in frame.columns)
        }
        for i in range(min(limit, frame.num_rows))
    ]


def _service(pipeline, max_batch: int) -> ScoringService:
    monitor = FairnessMonitor(pipeline.protected_attribute, window_size=1000)
    return ScoringService(
        ScoringEngine(pipeline, monitor=monitor),
        model_id="bench",
        max_batch=max_batch,
        max_wait_ms=MAX_WAIT_MS,
    )


def _legacy_server(service: ScoringService) -> ThreadingHTTPServer:
    """The serving stack as it existed before this benchmark.

    Faithful reproduction of the pre-micro-batching ``make_server``:
    HTTP/1.0 without keep-alive (one TCP connection and handler thread per
    request), unbuffered stdlib writes, ``allow_nan`` JSON, inline
    ``score_record`` in the handler thread.
    """

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _respond(self, status, payload):
            body = json.dumps(payload, allow_nan=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_POST(self):  # noqa: N802
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            try:
                self._respond(200, service.score(payload))
            except (KeyError, ValueError, TypeError) as error:
                self._respond(422, {"error": str(error)})

    return ThreadingHTTPServer(("127.0.0.1", 0), Handler)


# ----------------------------------------------------------------------
# load generation
# ----------------------------------------------------------------------
def _request_bytes(record) -> bytes:
    body = json.dumps(record).encode("utf-8")
    head = (
        "POST /score HTTP/1.1\r\n"
        "Host: bench\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


def _get_bytes(path: str) -> bytes:
    return f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode("ascii")


def _get_json(port, path):
    client = _RawClient(port)
    try:
        status, body = client.request(_get_bytes(path))
    finally:
        client.close()
    assert status == 200, f"GET {path} -> HTTP {status}"
    return _strict_loads(body)


def _wait_fleet_healthy(port, workers, timeout=60.0):
    """Block until /healthz reports every worker alive (CI gate: no
    traffic before the whole fleet is up)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            health = _get_json(port, "/healthz")
            if health["fleet"]["workers_alive"] == workers:
                return health
        except (OSError, AssertionError):
            pass
        time.sleep(0.1)
    raise RuntimeError(f"fleet of {workers} never became healthy on :{port}")


class _RawClient:
    """Minimal raw-socket HTTP client.

    ``http.client`` spends a few hundred microseconds per request on
    header objects and email-style parsing; on a small machine that
    client-side cost (the load generator shares CPUs with the servers)
    would swamp the server-side differences this benchmark measures.
    Requests are prebuilt byte strings; responses are parsed with two
    splits. Handles keep-alive, server-initiated close, and reconnect.
    """

    def __init__(self, port):
        self.port = port
        self.sock = None
        self.buffer = b""

    def connect(self):
        self.sock = socket.create_connection(("127.0.0.1", self.port), timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def close(self):
        if self.sock is not None:
            try:
                self.sock.close()
            finally:
                self.sock = None

    def request(self, payload: bytes):
        if self.sock is None:
            self.connect()
        self.sock.sendall(payload)
        while b"\r\n\r\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed connection mid-response")
            self.buffer += chunk
        head, _, self.buffer = self.buffer.partition(b"\r\n\r\n")
        status_line, _, header_block = head.partition(b"\r\n")
        status = int(status_line.split(None, 2)[1])
        headers = header_block.lower()
        length = None
        for line in headers.split(b"\r\n"):
            if line.startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
                break
        if length is None:
            raise ConnectionError(f"response without Content-Length: {head!r}")
        while len(self.buffer) < length:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed connection mid-body")
            self.buffer += chunk
        body, self.buffer = self.buffer[:length], self.buffer[length:]
        if b"connection: close" in headers or status_line.startswith(b"HTTP/1.0"):
            self.close()
        return status, body


class _Worker(threading.Thread):
    """One client thread: strict decoding, reconnect-and-retry on reset."""

    def __init__(self, port, requests, n_requests, barrier):
        super().__init__(daemon=True)
        self.port = port
        self.requests = requests
        self.n_requests = n_requests
        self.barrier = barrier
        self.completed = 0
        self.retries = 0
        self.failure = None

    def run(self):
        client = _RawClient(self.port)
        self.barrier.wait()
        try:
            for i in range(self.n_requests):
                payload = self.requests[i % len(self.requests)]
                for attempt in range(5):
                    try:
                        status, data = client.request(payload)
                        break
                    except (ConnectionError, socket.error):
                        # the legacy server refuses/resets under bursts;
                        # reconnect and retry so throughput reflects the
                        # traffic it actually manages to serve
                        client.close()
                        self.retries += 1
                        if attempt == 4:
                            raise
                if status != 200:
                    raise RuntimeError(f"HTTP {status}: {data[:200]!r}")
                out = _strict_loads(data)
                if out.get("records_scored") != 1:
                    raise RuntimeError(f"unexpected response {out}")
                self.completed += 1
        except Exception as error:  # propagate to the main thread
            self.failure = error
        finally:
            client.close()


def _hammer(port, records, n_threads, per_thread):
    prebuilt = [_request_bytes(r) for r in records]
    barrier = threading.Barrier(n_threads + 1)
    workers = [
        _Worker(port, prebuilt[i::n_threads], per_thread, barrier)
        for i in range(n_threads)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    for worker in workers:
        if worker.failure is not None:
            raise worker.failure
    done = sum(w.completed for w in workers)
    return done / elapsed, sum(w.retries for w in workers)


def _serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server.server_address[1]


def _verify_batched_bytes(pipeline, port, records):
    """Batched responses must be byte-identical to direct score_record."""
    reference = ScoringEngine(pipeline)
    expected = [
        dumps_strict({"records_scored": 1, **reference.score_record(r)})
        for r in records
    ]
    bodies = [None] * len(records)
    barrier = threading.Barrier(len(records))

    def fetch(i):
        barrier.wait()
        client = _RawClient(port)
        status, bodies[i] = client.request(_request_bytes(records[i]))
        assert status == 200, f"verification request {i} failed: HTTP {status}"
        client.close()

    threads = [threading.Thread(target=fetch, args=(i,)) for i in range(len(records))]
    [t.start() for t in threads]
    [t.join() for t in threads]
    for i, (got, want) in enumerate(zip(bodies, expected)):
        assert got == want, (
            f"batched response {i} differs from score_record: {got!r} != {want!r}"
        )


# ----------------------------------------------------------------------
def run_benchmarks(n_rows, n_threads, per_thread, rounds=3):
    fleet_workers = _fleet_size()
    with tempfile.TemporaryDirectory() as root:
        pipeline, complete = _build_pipeline(n_rows, root)
        records = _records(complete, 256)
        warmup = max(8, per_thread // 10)

        # the fleet forks FIRST, while this process is still single-
        # threaded — forking after the in-process servers spawn handler
        # threads would risk inheriting locks mid-flight — and the workers
        # share the pipeline loaded above copy-on-write
        fleet = ServingFleet(
            lambda: _service(pipeline, max_batch=MAX_BATCH),
            port=0,
            workers=fleet_workers,
        )
        _, fleet_port = fleet.start()

        # all servers share the machine; rounds are interleaved and the
        # best round kept, so a noisy neighbor (GC, page cache) biases no
        # single configuration
        batched_service = _service(pipeline, max_batch=MAX_BATCH)
        unbatched_service = _service(pipeline, max_batch=1)
        legacy_service = _service(pipeline, max_batch=1)
        servers = {
            "batched": make_server(batched_service, port=0),
            "unbatched": make_server(unbatched_service, port=0),
            "legacy": _legacy_server(legacy_service),
        }
        ports = {name: _serve(server) for name, server in servers.items()}
        ports["fleet"] = fleet_port
        _wait_fleet_healthy(fleet_port, fleet_workers)
        _verify_batched_bytes(pipeline, ports["batched"], records[:24])
        _verify_batched_bytes(pipeline, fleet_port, records[:24])

        throughput = {name: 0.0 for name in ports}
        retries = {name: 0 for name in ports}
        for name in ports:
            _hammer(ports[name], records, n_threads, warmup)
        for _ in range(rounds):
            for name in ports:
                rps, retried = _hammer(ports[name], records, n_threads, per_thread)
                throughput[name] = max(throughput[name], rps)
                retries[name] += retried
        batching_stats = batched_service._batcher.stats()

        # fleet bookkeeping must add up across workers: every request one
        # of them counted is a success or an error, never both or neither
        fleet_metrics = _get_json(fleet_port, "/metrics")
        assert fleet_metrics["fleet"]["workers_alive"] == fleet_workers, (
            f"fleet lost workers during the run: {fleet_metrics['fleet']}"
        )
        assert (
            fleet_metrics["requests"]
            == fleet_metrics["successes"] + fleet_metrics["errors"]
        ), f"fleet counter invariant violated: {fleet_metrics}"
        assert fleet_metrics["errors"] == 0, (
            f"fleet served errors under load: {fleet_metrics}"
        )

        fleet.stop()
        for server in servers.values():
            server.shutdown()
            server.server_close()
        for service in (batched_service, unbatched_service, legacy_service):
            service.close()

    return {
        "measurements": {
            "legacy_rps": round(throughput["legacy"], 1),
            "unbatched_rps": round(throughput["unbatched"], 1),
            "batched_rps": round(throughput["batched"], 1),
            "fleet_rps": round(throughput["fleet"], 1),
            "mean_batch_size": round(batching_stats["mean_batch_size"], 2),
            "legacy_connection_retries": retries["legacy"],
        },
        "speedup": {
            "batched_vs_legacy": round(
                throughput["batched"] / throughput["legacy"], 2
            ),
            "unbatched_vs_legacy": round(
                throughput["unbatched"] / throughput["legacy"], 2
            ),
            "batched_vs_unbatched": round(
                throughput["batched"] / throughput["unbatched"], 2
            ),
            "fleet_vs_batched": round(
                throughput["fleet"] / throughput["batched"], 2
            ),
            "fleet_vs_legacy": round(
                throughput["fleet"] / throughput["legacy"], 2
            ),
        },
        "meta": {
            "n_rows": n_rows,
            "client_threads": n_threads,
            "requests_per_thread": per_thread,
            "rounds": rounds,
            "max_batch": MAX_BATCH,
            "max_wait_ms": MAX_WAIT_MS,
            "cpu_count": os.cpu_count(),
            "fleet_workers": fleet_workers,
            "fleet_mode": fleet.mode,
        },
        "fleet_floor": _fleet_floor_status(os.cpu_count(), fleet_workers),
    }


def _fleet_floor_status(cpu_count, fleet_workers) -> dict:
    """Machine-readable record of whether the fleet floor was measurable.

    Committed into BENCH_http.json so the CI gate (and a future re-record
    on real multi-core hardware) can distinguish "not measured on this
    machine" from "regressed": ``skipped`` is true exactly when the
    recording machine could not physically spread a
    ``FLEET_FLOOR_WORKERS``-worker fleet across cores.
    """
    cores = cpu_count or 1
    skipped = cores < FLEET_FLOOR_WORKERS or fleet_workers < FLEET_FLOOR_WORKERS
    status = {
        "floor": FLEET_FLOOR,
        "requires_workers": FLEET_FLOOR_WORKERS,
        "skipped": skipped,
    }
    if skipped:
        status["reason"] = (
            f"recording machine had cpu_count={cores} and "
            f"fleet_workers={fleet_workers}; the floor only binds at "
            f">= {FLEET_FLOOR_WORKERS} cores and workers"
        )
    return status


def check_floors():
    with open(BENCH_JSON) as handle:
        recorded = json.load(handle)
    for name, floor in SPEEDUP_FLOORS.items():
        value = recorded["speedup"][name]
        assert value >= floor, (
            f"committed {name} speedup {value} fell below its floor {floor}; "
            "re-record BENCH_http.json from an implementation that restores it"
        )
    meta = recorded["meta"]
    status = recorded.get("fleet_floor") or _fleet_floor_status(
        meta.get("cpu_count"), meta.get("fleet_workers", 0)
    )
    if not status["skipped"]:
        value = recorded["speedup"]["fleet_vs_batched"]
        assert value >= FLEET_FLOOR, (
            f"committed fleet_vs_batched speedup {value} fell below its "
            f"floor {FLEET_FLOOR} on a {meta.get('cpu_count')}-core "
            "recording machine; re-record BENCH_http.json from an "
            "implementation that restores it"
        )
    else:
        print(f"fleet floor skipped: {status['reason']}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny run + floors")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None, help="per thread")
    args = parser.parse_args()
    n_rows = args.rows or (SMOKE_ROWS if args.smoke else ADULT_ROWS)
    n_threads = args.threads or (8 if args.smoke else 16)
    per_thread = args.requests or (40 if args.smoke else 200)

    results = run_benchmarks(
        n_rows, n_threads, per_thread, rounds=2 if args.smoke else 3
    )
    print(json.dumps(results, indent=2, sort_keys=True))

    if args.smoke:
        check_floors()
        print(
            "\nsmoke checks passed (strict JSON, byte-identity to "
            "score_record, committed speedup floors)"
        )
        return 0

    with open(BENCH_JSON, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nrecorded to {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

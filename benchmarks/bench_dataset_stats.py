"""Section 2.4 / 5.3 dataset audit: the adult missingness structure.

Regenerates the in-text statistics the paper's missing-value study rests
on: incomplete-row fraction, the 4x native-country missingness disparity
between white and non-white persons, the 24% vs 14% positive-label gap
between complete and incomplete records, and the marital-status flip.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.datasets import generate_adult
from repro.frame import group_missing_rates, value_counts

from _config import ADULT_SIZE, emit


def _audit():
    frame = generate_adult() if ADULT_SIZE is None else generate_adult(n=max(ADULT_SIZE, 10000))
    incomplete = frame.missing_mask()
    positive = np.asarray([v == ">50K" for v in frame["income"]])
    rates = group_missing_rates(frame, "race", "native_country")
    nonwhite = [r for g, r in rates.items() if g != "White"]
    white_rate = rates["White"]
    weights = value_counts(frame, "race")
    nonwhite_rate = float(
        np.average(nonwhite, weights=[weights[g] for g in rates if g != "White"])
    )
    return {
        "rows": frame.num_rows,
        "incomplete_rows": int(incomplete.sum()),
        "incomplete_fraction": float(incomplete.mean()),
        "positive_rate_complete": float(positive[~incomplete].mean()),
        "positive_rate_incomplete": float(positive[incomplete].mean()),
        "native_country_missing_white": white_rate,
        "native_country_missing_nonwhite": nonwhite_rate,
        "missingness_ratio": nonwhite_rate / white_rate,
        "marital_mode_complete": frame.mask(~incomplete).col("marital_status").mode(),
        "marital_mode_incomplete": frame.mask(incomplete).col("marital_status").mode(),
    }


@pytest.mark.benchmark(group="dataset-stats")
def test_adult_missingness_audit(benchmark, capsys):
    audit = benchmark.pedantic(_audit, rounds=1, iterations=1)
    rows = [[k, v] for k, v in audit.items()]
    emit("adult_missingness_audit", format_table(["statistic", "value"], rows), capsys=capsys)
    # the paper's documented structure
    assert 0.05 < audit["incomplete_fraction"] < 0.11
    assert audit["missingness_ratio"] > 2.5  # paper: ~4x
    assert audit["positive_rate_complete"] > audit["positive_rate_incomplete"] + 0.05
    assert audit["marital_mode_complete"] == "Married-civ-spouse"
    assert audit["marital_mode_incomplete"] == "Never-married"

"""Micro/macro benchmarks for the model-selection hot path.

Covers the redundant-work sites the presorted-induction refactor removes:
the Figure-2 decision-tree tuning grid (candidates x 5 folds on
germancredit-scale data), single deep tree fits, one-vs-rest linear
training, and the confusion-matrix evaluation path.

Usage::

    PYTHONPATH=src python benchmarks/bench_learn.py                    # print table
    PYTHONPATH=src python benchmarks/bench_learn.py --record baseline  # per-node argsort numbers
    PYTHONPATH=src python benchmarks/bench_learn.py --record current   # presorted-backend numbers
    PYTHONPATH=src python benchmarks/bench_learn.py --scale            # 100k/1M histogram-vs-exact
    PYTHONPATH=src python benchmarks/bench_learn.py --smoke            # tiny CI sanity run

``--record`` merges the timings into ``benchmarks/BENCH_learn.json``
under the given phase key and, when both phases are present, recomputes the
per-benchmark speedup table. ``--scale`` times single deep tree fits at
100k and 1M rows on the exact presort backend vs the histogram backend
(in the <=256-distinct regime where both produce the identical tree) and
records the points under the ``scale`` key. ``--smoke`` runs the
workloads once at a small scale, verifies the identity invariants of the
fast paths (presort hint, ``n_jobs`` fan-out, vectorized one-vs-rest,
coded confusion matrix, histogram == exact tree in-regime), and asserts
the committed speedup trajectory — micro and scale points — still meets
its floors, so CI catches both a broken fast path and a silently
regressed recording.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.featurization import Featurizer
from repro.core.learners import DECISION_TREE_GRID
from repro.core.missing_values import ModeImputer
from repro.datasets import load_dataset
from repro.learn import (
    DecisionTreeClassifier,
    GridSearchCV,
    LogisticRegressionGD,
    SGDClassifier,
    confusion_matrix,
)

# committed next to the benchmark (benchmarks/results/ is gitignored) so
# the perf trajectory is recorded in-repo
BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_learn.json")

# floors enforced by --smoke against the committed trajectory: re-recording
# a regressed implementation fails CI even though CI never times full scale
SPEEDUP_FLOORS = {"dt_grid_fit": 3.0, "confusion_matrix": 2.0}

# histogram-vs-exact floors for the committed --scale points: the whole
# point of the histogram backend is the million-row fit
SCALE_POINTS = {"dt_fit_100k": 100_000, "dt_fit_1M": 1_000_000}
SCALE_FLOORS = {"dt_fit_1M": 3.0}
SCALE_DEPTH = 8

# instrumentation must be free when spans are off: the committed A/B of
# dt_grid_fit (telemetry at defaults vs the master kill switch) may not
# exceed this, and --smoke re-checks the disabled span() micro-cost live
TELEMETRY_OVERHEAD_FLOOR_PCT = 1.0
NOOP_SPAN_MAX_US = 2.0  # per disabled span() call, generous for CI boxes

GERMANCREDIT_ROWS = 1000  # the Figure-2 tuning-grid scale
SMOKE_ROWS = 300


def _featurized(name: str, n_rows: int, seed: int = 0):
    """Dataset -> imputed -> featurized (X, y), the matrices grid search sees."""
    frame, spec = load_dataset(name, n=n_rows, seed=seed)
    columns = list(spec.numeric_features) + list(spec.categorical_features)
    frame = ModeImputer().fit(frame, columns, seed).handle_missing(frame)
    data = Featurizer(spec).fit(frame).transform(frame)
    return data.features, data.labels


def _multiclass(n: int, d: int, n_classes: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    centers = rng.normal(size=(n_classes, d))
    y = np.argmax(X @ centers.T, axis=1)
    return X, y


def _time(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmarks(n_rows: int, repeats: int) -> dict:
    timings = {}

    X, y = _featurized("germancredit", n_rows)

    # the Figure-2 hot path: exhaustive tuning of the decision tree,
    # 2 criteria x 3 depths x 4 min-leaf x 3 min-split = 72 candidates,
    # each cross-validated over 5 folds (the paper's "exhaustive search")
    def _grid_fit():
        GridSearchCV(
            DecisionTreeClassifier(random_state=0),
            DECISION_TREE_GRID,
            cv=5,
            random_state=0,
        ).fit(X, y)

    timings["dt_grid_fit"] = _time(_grid_fit, max(1, repeats - 1))

    timings["dt_fit_entropy"] = _time(
        lambda: DecisionTreeClassifier(
            criterion="entropy", max_depth=None, random_state=0
        ).fit(X, y),
        repeats,
    )
    timings["dt_fit_gini"] = _time(
        lambda: DecisionTreeClassifier(
            criterion="gini", max_depth=None, random_state=0
        ).fit(X, y),
        repeats,
    )

    Xm, ym = _multiclass(4 * n_rows, 40, 6)
    timings["ovr_sgd_fit"] = _time(
        lambda: SGDClassifier(
            loss="log", max_iter=5, batch_size=64, random_state=0
        ).fit(Xm, ym),
        repeats,
    )
    # imputer-style shape: many classes, cache-sized target stack
    Xg, yg = _multiclass(n_rows, 20, 12)
    timings["ovr_gd_fit"] = _time(
        lambda: LogisticRegressionGD(max_iter=60, random_state=0).fit(Xg, yg),
        repeats,
    )

    # the evaluation path sees numeric (favorable/unfavorable-style) labels
    rng = np.random.default_rng(0)
    n_eval = 200 * n_rows
    labels = [float(i) for i in range(8)]
    y_true = np.asarray(labels)[rng.integers(0, 8, n_eval)]
    y_pred = np.asarray(labels)[rng.integers(0, 8, n_eval)]
    weights = rng.random(n_eval)
    timings["confusion_matrix"] = _time(
        lambda: confusion_matrix(y_true, y_pred, labels=labels, sample_weight=weights),
        repeats,
    )

    return timings


def run_telemetry_benchmarks(n_rows: int, repeats: int) -> dict:
    """A/B the Figure-2 grid fit: telemetry at defaults vs killed off.

    The default state (metrics on, spans off) is what every normal run
    pays for the instrumentation inside the tree/grid hot path; the kill
    switch (``REPRO_TELEMETRY=0``) removes even the counter adds. The
    committed ``overhead_pct`` between them is gated at
    ``TELEMETRY_OVERHEAD_FLOOR_PCT`` by ``--smoke``. A traced round runs
    too — not gated (tracing is opt-in) but recorded, with the per-stage
    span totals and the splitter backend the fits chose.
    """
    import tempfile

    from repro import telemetry

    X, y = _featurized("germancredit", n_rows)

    def _grid_fit():
        GridSearchCV(
            DecisionTreeClassifier(random_state=0),
            DECISION_TREE_GRID,
            cv=5,
            random_state=0,
        ).fit(X, y)

    _grid_fit()  # warm caches/allocator before any timed leg

    # interleave the legs so clock drift on a busy box hits both evenly
    disabled = default = float("inf")
    for _ in range(repeats):
        telemetry.reset_for_tests()
        telemetry.configure(enabled=False)
        disabled = min(disabled, _time(_grid_fit, 1))
        telemetry.reset_for_tests()
        default = min(default, _time(_grid_fit, 1))

    with tempfile.TemporaryDirectory() as tmp:
        telemetry.reset_for_tests()
        telemetry.configure(trace_dir=tmp)
        before = telemetry.aggregate_state()
        traced = _time(_grid_fit, repeats)
        stages = telemetry.aggregate_delta(before)
    telemetry.reset_for_tests()

    backend = (
        DecisionTreeClassifier(criterion="entropy", max_depth=8)
        .fit(X, y)
        .fit_backend_
    )
    return {
        "n_rows": n_rows,
        "repeats": repeats,
        "dt_grid_fit_disabled_s": round(disabled, 6),
        "dt_grid_fit_default_s": round(default, 6),
        "dt_grid_fit_traced_s": round(traced, 6),
        "overhead_pct": round((default - disabled) / disabled * 100.0, 3),
        "traced_overhead_pct": round(
            (traced - disabled) / disabled * 100.0, 3
        ),
        "fit_backend": backend,
        "stage_timings": stages,
    }


def _scale_matrix(n: int, seed: int = 0):
    """Synthetic (X, y) inside the histogram exactness regime.

    Every feature has <= 256 distinct values and weights are unit, so the
    exact and histogram backends must induce the identical tree — the
    scale points time two routes to the same answer.
    """
    rng = np.random.default_rng(seed)
    cards = [2, 3, 5, 8, 13, 21, 40, 64, 100, 150, 200, 256]
    X = np.column_stack([rng.integers(0, c, n).astype(np.float64) for c in cards])
    y = ((X[:, 0] + X[:, 6] / 40.0 + rng.normal(size=n)) > 1.0).astype(np.int64)
    return X, y


def run_scale_benchmarks(repeats: int) -> dict:
    results = {}
    for name, n in SCALE_POINTS.items():
        X, y = _scale_matrix(n)
        exact_s = _time(
            lambda: DecisionTreeClassifier(max_depth=SCALE_DEPTH).fit(
                X, y, presort="exact"
            ),
            repeats,
        )
        histogram_s = _time(
            lambda: DecisionTreeClassifier(max_depth=SCALE_DEPTH).fit(
                X, y, presort="histogram"
            ),
            repeats,
        )
        results[name] = {
            "rows": n,
            "features": X.shape[1],
            "max_depth": SCALE_DEPTH,
            "exact_s": round(exact_s, 4),
            "histogram_s": round(histogram_s, 4),
            "speedup": round(exact_s / histogram_s, 2),
        }
        print(
            f"{name:12s} exact {exact_s:8.3f}s  histogram {histogram_s:8.3f}s  "
            f"{exact_s / histogram_s:6.2f}x"
        )
    return results


def check_invariants(n_rows: int) -> None:
    """Identity spot-checks on the fast paths (CI smoke gate)."""
    from repro.learn import KFold, Presort, accuracy_score, cross_val_score

    X, y = _featurized("germancredit", n_rows)

    # 1. an externally supplied presort hint must not change the tree
    plain = DecisionTreeClassifier(criterion="entropy", max_depth=8).fit(X, y)
    hinted = DecisionTreeClassifier(criterion="entropy", max_depth=8).fit(
        X, y, presort=Presort(X)
    )
    assert _tree_signature(plain) == _tree_signature(hinted), (
        "presort hint changed the induced tree"
    )

    # 2. n_jobs fan-out must reproduce the serial search exactly
    grid = {"criterion": ["gini", "entropy"], "max_depth": [3, 8]}
    serial = GridSearchCV(
        DecisionTreeClassifier(random_state=0), grid, cv=3, random_state=0
    ).fit(X, y)
    fanned = GridSearchCV(
        DecisionTreeClassifier(random_state=0), grid, cv=3, random_state=0, n_jobs=2
    ).fit(X, y)
    assert serial.cv_results_ == fanned.cv_results_, "n_jobs changed grid scores"

    # 3. vectorized one-vs-rest == the per-class loop, byte for byte
    Xm, ym = _multiclass(400, 12, 4)
    model = SGDClassifier(loss="log", max_iter=5, batch_size=32, random_state=3)
    model.fit(Xm, ym)
    for index, klass in enumerate(model.classes_):
        signs = np.where(ym == klass, 1.0, -1.0)
        w, b = model._fit_binary(Xm, signs, np.ones(len(ym)))
        assert np.array_equal(model.coef_[index], w), "OvR coefficients drifted"
        assert model.intercept_[index] == b, "OvR intercepts drifted"

    # 4. coded confusion matrix == the dict-lookup accumulation
    rng = np.random.default_rng(1)
    labels = ["a", "b", "c"]
    y_true = np.asarray(labels, dtype=object)[rng.integers(0, 3, 500)]
    y_pred = np.asarray(labels, dtype=object)[rng.integers(0, 3, 500)]
    weights = rng.random(500)
    fast = confusion_matrix(y_true, y_pred, labels=labels, sample_weight=weights)
    slow = np.zeros((3, 3))
    index = {label: i for i, label in enumerate(labels)}
    for t, p, weight in zip(y_true, y_pred, weights):
        slow[index[t], index[p]] += weight
    assert np.array_equal(fast, slow), "confusion_matrix fast path drifted"

    # 5. cross_val_score scoring hook is honoured
    def inverted(model, X_val, y_val):
        return -accuracy_score(y_val, model.predict(X_val))

    scores = cross_val_score(
        DecisionTreeClassifier(max_depth=3), X, y, cv=3, random_state=0,
        scoring=inverted,
    )
    assert (scores <= 0).all(), "custom scoring ignored by cross_val_score"

    # 6. the histogram backend reproduces the exact tree in the <=256
    #    distinct / unit-weight regime, and auto stays exact at paper scale
    Xh, yh = _scale_matrix(5_000)
    exact = DecisionTreeClassifier(max_depth=SCALE_DEPTH).fit(
        Xh, yh, presort="exact"
    )
    histogram = DecisionTreeClassifier(max_depth=SCALE_DEPTH).fit(
        Xh, yh, presort="histogram"
    )
    assert _tree_signature(exact) == _tree_signature(histogram), (
        "histogram splitter diverged from the exact presort tree in-regime"
    )
    auto = DecisionTreeClassifier(criterion="entropy", max_depth=8).fit(
        X, y, presort="auto"
    )
    assert _tree_signature(auto) == _tree_signature(plain), (
        "presort='auto' changed the tree at paper scale"
    )

    # 7. telemetry must be free when off: spans default to the shared
    #    no-op (no per-call allocation), its call cost stays micro, and a
    #    traced fit reproduces the untraced tree node for node
    from repro import telemetry

    assert not telemetry.tracing_enabled(), (
        "tracing is on by default; the hot path would pay for spans"
    )
    assert telemetry.span("bench.check") is telemetry.NOOP_SPAN, (
        "disabled span() no longer returns the shared no-op singleton"
    )
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with telemetry.span("bench.noop", key=1):
            pass
    per_call_us = (time.perf_counter() - start) / calls * 1e6
    assert per_call_us < NOOP_SPAN_MAX_US, (
        f"disabled span() costs {per_call_us:.2f}us/call, "
        f"above the {NOOP_SPAN_MAX_US}us bound"
    )
    import tempfile

    telemetry.reset_for_tests()
    with tempfile.TemporaryDirectory() as tmp:
        telemetry.configure(trace_dir=tmp)
        traced_tree = DecisionTreeClassifier(
            criterion="entropy", max_depth=8
        ).fit(X, y)
    telemetry.reset_for_tests()
    assert _tree_signature(traced_tree) == _tree_signature(plain), (
        "tracing changed the induced tree"
    )

    # 8. the committed trajectory still meets its floors
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            recorded = json.load(handle)
        for name, floor in SPEEDUP_FLOORS.items():
            ratio = recorded.get("speedup", {}).get(name)
            assert ratio is not None and ratio >= floor, (
                f"committed speedup for {name} is {ratio}, below the {floor}x floor"
            )
        for name, floor in SCALE_FLOORS.items():
            ratio = recorded.get("scale", {}).get(name, {}).get("speedup")
            assert ratio is not None and ratio >= floor, (
                f"committed scale speedup for {name} is {ratio}, "
                f"below the {floor}x histogram-vs-exact floor"
            )
        overhead = recorded.get("telemetry", {}).get("overhead_pct")
        assert overhead is not None, (
            "BENCH_learn.json has no telemetry overhead record; "
            "re-run with --telemetry"
        )
        assert overhead <= TELEMETRY_OVERHEAD_FLOOR_PCT, (
            f"committed disabled-telemetry overhead on dt_grid_fit is "
            f"{overhead}%, above the {TELEMETRY_OVERHEAD_FLOOR_PCT}% ceiling"
        )


def _tree_signature(model):
    nodes = []
    stack = [model.tree_]
    while stack:
        node = stack.pop()
        nodes.append(
            (node.feature, node.threshold, node.n_samples, tuple(node.distribution))
        )
        if not node.is_leaf:
            stack.extend((node.left, node.right))
    return nodes


def render(timings: dict, n_rows: int) -> str:
    lines = [f"bench_learn (germancredit n={n_rows})", "-" * 44]
    for name, seconds in timings.items():
        lines.append(f"{name:24s} {seconds * 1e3:10.2f} ms")
    return "\n".join(lines)


def record(phase: str, timings: dict, n_rows: int, repeats: int) -> dict:
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data.setdefault("meta", {})[phase] = {"n_rows": n_rows, "repeats": repeats}
    data[phase] = timings
    if "baseline" in data and "current" in data:
        data["speedup"] = {
            name: round(data["baseline"][name] / data["current"][name], 2)
            for name in data["current"]
            if name in data["baseline"] and data["current"][name] > 0
        }
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", choices=["baseline", "current"])
    parser.add_argument("--smoke", action="store_true", help="tiny run + identity checks")
    parser.add_argument(
        "--scale",
        action="store_true",
        help="time 100k/1M-row histogram-vs-exact fits and record them",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="A/B dt_grid_fit with telemetry off/default/traced and record it",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    if args.scale:
        results = run_scale_benchmarks(args.repeats or 1)
        data = {}
        if os.path.exists(BENCH_JSON):
            with open(BENCH_JSON) as handle:
                data = json.load(handle)
        data["scale"] = results
        with open(BENCH_JSON, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded scale points to {BENCH_JSON}")
        return 0

    if args.telemetry:
        results = run_telemetry_benchmarks(
            args.rows or GERMANCREDIT_ROWS, args.repeats or 3
        )
        data = {}
        if os.path.exists(BENCH_JSON):
            with open(BENCH_JSON) as handle:
                data = json.load(handle)
        data["telemetry"] = results
        with open(BENCH_JSON, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded telemetry overhead to {BENCH_JSON}")
        for key, value in results.items():
            print(f"  {key}: {value}")
        return 0

    n_rows = args.rows or (SMOKE_ROWS if args.smoke else GERMANCREDIT_ROWS)
    repeats = args.repeats or (1 if args.smoke else 3)

    if args.smoke:
        check_invariants(n_rows)
    timings = run_benchmarks(n_rows, repeats)
    print(render(timings, n_rows))
    if args.record:
        data = record(args.record, timings, n_rows, repeats)
        if "speedup" in data:
            print("\nspeedup vs baseline:")
            for name, ratio in sorted(data["speedup"].items()):
                print(f"  {name:24s} {ratio:6.2f}x")
    if args.smoke:
        print("\nsmoke checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

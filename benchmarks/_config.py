"""Shared configuration for the benchmark harness.

Benchmarks run at a laptop-friendly scale by default; set
``FAIRPREP_SCALE=paper`` to execute the paper's full sweeps (16+ seeds,
full hyperparameter grids, full-size adult dataset).

Each figure bench executes its sweep once (``benchmark.pedantic`` with a
single round — an experiment grid is not a microbenchmark), renders the
same series the paper plots, and writes the tables both to stderr (so they
appear in the tee'd bench output) and to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import sys

PAPER_SCALE = os.environ.get("FAIRPREP_SCALE", "quick").lower() == "paper"

# seeds: the paper uses 16 for Figure 2 and 18 for Figure 3
FIG2_SEEDS = list(range(16)) if PAPER_SCALE else [0, 3, 7, 13, 21, 34, 55, 89]
FIG3_SEEDS = list(range(18)) if PAPER_SCALE else [0, 1, 2, 3, 4, 5]
FIG45_SEEDS = list(range(8)) if PAPER_SCALE else [0, 1, 2]

ADULT_SIZE = None if PAPER_SCALE else 6000  # None = full 32,561 rows

# reduced decision-tree grid for quick runs (full grid = the paper's
# 2 criteria x 3 depths x 4 min-leaf x 3 min-split)
QUICK_DT_GRID = {
    "criterion": ["gini", "entropy"],
    "max_depth": [3, 10],
    "min_samples_leaf": [1, 10],
    "min_samples_split": [2, 20],
}

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str, capsys=None) -> None:
    """Print a rendered table and persist it under results/.

    Pass the test's ``capsys`` fixture so the table bypasses pytest's output
    capture and lands in the benchmark log.
    """
    banner = f"\n===== {name} ({'paper' if PAPER_SCALE else 'quick'} scale) =====\n"
    if capsys is not None:
        with capsys.disabled():
            print(banner + text)
    else:
        sys.__stderr__.write(banner + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")

"""Lifecycle component microbenchmarks.

Times the building blocks an evaluation run is made of — featurization,
reweighing, disparate-impact repair, metric-bundle computation, learned
imputation, and a full germancredit lifecycle — so performance regressions
in the framework itself are visible. (The paper's §5.1 grid executes 1,344
runs; per-run overhead matters.)
"""

import numpy as np
import pytest

from repro.core import (
    DIRemover,
    DatawigImputer,
    Experiment,
    Featurizer,
    LogisticRegression,
    ReweighingPreProcessor,
)
from repro.datasets import GERMANCREDIT_SPEC, generate_adult, generate_germancredit
from repro.fairness import ClassificationMetric
from repro.learn import StandardScaler


@pytest.fixture(scope="module")
def german():
    return generate_germancredit()


@pytest.fixture(scope="module")
def german_annotated(german):
    featurizer = Featurizer(GERMANCREDIT_SPEC, StandardScaler()).fit(german)
    return featurizer, featurizer.transform(german)


@pytest.mark.benchmark(group="components")
def test_featurization_throughput(benchmark, german):
    featurizer = Featurizer(GERMANCREDIT_SPEC, StandardScaler()).fit(german)
    benchmark(featurizer.transform, german)


@pytest.mark.benchmark(group="components")
def test_reweighing_cost(benchmark, german_annotated):
    featurizer, data = german_annotated
    pre = ReweighingPreProcessor()

    def run():
        pre.fit(data, featurizer.privileged_groups, featurizer.unprivileged_groups, 0)
        return pre.transform_train(data)

    benchmark(run)


@pytest.mark.benchmark(group="components")
def test_di_remover_cost(benchmark, german_annotated):
    featurizer, data = german_annotated
    pre = DIRemover(repair_level=1.0)

    def run():
        pre.fit(data, featurizer.privileged_groups, featurizer.unprivileged_groups, 0)
        return pre.transform_train(data)

    benchmark(run)


@pytest.mark.benchmark(group="components")
def test_metric_bundle_cost(benchmark, german_annotated):
    featurizer, data = german_annotated
    rng = np.random.default_rng(0)
    pred = data.with_predictions(labels=(rng.random(data.num_instances) < 0.7).astype(float))

    def run():
        return ClassificationMetric(
            data, pred, featurizer.unprivileged_groups, featurizer.privileged_groups
        ).all_metrics()

    result = benchmark(run)
    assert len(result) == 97


@pytest.mark.benchmark(group="components")
def test_learned_imputer_fit_cost(benchmark, capsys):
    frame = generate_adult(n=4000)
    features = [c for c in frame.columns if c != "income"]

    def run():
        return DatawigImputer().fit(frame, features, seed=0)

    benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.benchmark(group="components")
def test_full_lifecycle_untuned_lr(benchmark, german):
    def run():
        return Experiment(
            german,
            GERMANCREDIT_SPEC,
            random_seed=0,
            learner=LogisticRegression(tuned=False),
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.test_metrics["overall__accuracy"] > 0.5

"""Figure 3: impact of feature scaling on ricci.

Regenerates panels (a) and (b): logistic regression vs decision tree, with
and without standardization of the raw 0-100 exam scores, under three
interventions (none, reweighing, di-remover).

Paper shape: unscaled SGD logistic regression often fails to learn a valid
model (accuracy below 0.5 — worse than random), while decision-tree results
with and without scaling overlap.
"""

import pytest

from repro.analysis import (
    figure3_series,
    figure3_shape_checks,
    plot_figure3_panel,
    render_figure3,
)
from repro.core import (
    DIRemover,
    DecisionTree,
    GridSpec,
    LogisticRegression,
    NoIntervention,
    ReweighingPreProcessor,
    run_grid,
)
from repro.learn import NoOpScaler, StandardScaler

from _config import FIG3_SEEDS, PAPER_SCALE, QUICK_DT_GRID, emit


def _sweep():
    dt_grid = None if PAPER_SCALE else QUICK_DT_GRID
    grid = GridSpec(
        seeds=FIG3_SEEDS,
        learners=[
            lambda: LogisticRegression(tuned=True),
            lambda: DecisionTree(tuned=True, param_grid=dt_grid),
        ],
        interventions=[
            NoIntervention,
            ReweighingPreProcessor,
            lambda: DIRemover(1.0),
        ],
        scalers=[lambda: StandardScaler(), lambda: NoOpScaler()],
    )
    return run_grid("ricci", grid)


@pytest.mark.benchmark(group="figure3")
def test_fig3_feature_scaling(benchmark, capsys):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    panels = figure3_series(results)
    checks = figure3_shape_checks(panels)
    emit(
        "figure3_ricci_scaling",
        render_figure3(panels)
        + "\n\nshape checks: "
        + f"lr_mean_unscaled_failure_rate={checks['lr_mean_unscaled_failure_rate']:.2f}, "
        + f"dt_mean_scaling_ks_distance={checks['dt_mean_scaling_ks_distance']:.2f}"
        + "\n\n"
        + plot_figure3_panel(panels, "LogisticRegression", "no intervention"), capsys=capsys)
    # LR must visibly fail without scaling; trees must be essentially
    # indistinguishable with vs without scaling
    assert checks["lr_mean_unscaled_failure_rate"] >= 0.3
    assert checks["dt_mean_scaling_ks_distance"] <= 0.5

"""Ablation benches for the design choices DESIGN.md calls out.

* repair-level sweep: how the DI remover's repair level trades disparate
  impact against accuracy;
* reweighing exactness: the weighted parity of the training data is zero
  after reweighing, for every seed;
* grid-size ablation: how much hyperparameter tuning is needed before the
  Figure 2 variance reduction appears;
* learned-imputer model family: tree-based vs fallback (mode) imputation
  accuracy on the adult MNAR columns.
"""

import numpy as np
import pytest

from repro.analysis import format_table, summary, variance_ratio
from repro.core import (
    DIRemover,
    DatawigImputer,
    Experiment,
    Featurizer,
    GridSpec,
    LogisticRegression,
    ModeImputer,
    ReweighingPreProcessor,
    run_grid,
)
from repro.datasets import GERMANCREDIT_SPEC, generate_adult, generate_germancredit
from repro.fairness import BinaryLabelDatasetMetric
from repro.learn import StandardScaler

from _config import PAPER_SCALE, emit

SEEDS = list(range(8)) if PAPER_SCALE else [0, 1, 2]


@pytest.mark.benchmark(group="ablations")
def test_repair_level_sweep(benchmark, capsys):
    """DI and accuracy as the repair level moves 0 -> 1 (germancredit)."""

    def sweep():
        rows = []
        frame, spec = generate_germancredit(), GERMANCREDIT_SPEC
        for level in (0.0, 0.25, 0.5, 0.75, 1.0):
            accuracies, dis = [], []
            for seed in SEEDS:
                result = Experiment(
                    frame, spec, random_seed=seed,
                    learner=LogisticRegression(tuned=False),
                    pre_processor=DIRemover(level),
                ).run()
                accuracies.append(result.test_metrics["overall__accuracy"])
                dis.append(result.test_metrics["group__disparate_impact"])
            rows.append([level, summary(accuracies)["mean"], summary(dis)["mean"]])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_repair_level", format_table(["repair", "accuracy", "DI"], rows), capsys=capsys)
    # higher repair should not push DI further from 1 than no repair
    di_gap = lambda row: abs(1.0 - row[2])
    assert di_gap(rows[-1]) <= di_gap(rows[0]) + 0.1


@pytest.mark.benchmark(group="ablations")
def test_reweighing_exactness(benchmark, capsys):
    """Weighted statistical parity is exactly zero after reweighing."""

    def run():
        frame = generate_germancredit()
        featurizer = Featurizer(GERMANCREDIT_SPEC, StandardScaler()).fit(frame)
        data = featurizer.transform(frame)
        gaps = []
        for seed in range(10):
            pre = ReweighingPreProcessor().fit(
                data, featurizer.privileged_groups, featurizer.unprivileged_groups, seed
            )
            out = pre.transform_train(data)
            metric = BinaryLabelDatasetMetric(
                out, featurizer.unprivileged_groups, featurizer.privileged_groups
            )
            gaps.append(abs(metric.statistical_parity_difference()))
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_reweighing_exactness",
        format_table(["max_abs_weighted_parity"], [[max(gaps)]]), capsys=capsys)
    assert max(gaps) < 1e-9


@pytest.mark.benchmark(group="ablations")
def test_grid_size_vs_variance(benchmark, capsys):
    """How much tuning buys the Figure 2 variance reduction (germancredit)."""

    grids = {
        "none (default params)": None,
        "small (1x2)": {"penalty": ["l2"], "alpha": [0.0001, 0.005]},
        "paper (3x4)": None,  # LogisticRegression's built-in full grid
    }

    def sweep():
        per_grid = {}
        for label in grids:
            dis = []
            for seed in SEEDS:
                if label.startswith("none"):
                    learner = LogisticRegression(tuned=False)
                elif label.startswith("small"):
                    learner = LogisticRegression(tuned=True, param_grid=grids[label], cv=3)
                else:
                    learner = LogisticRegression(tuned=True)
                result = Experiment(
                    generate_germancredit(), GERMANCREDIT_SPEC, random_seed=seed,
                    learner=learner,
                ).run()
                dis.append(result.test_metrics["group__disparate_impact"])
            per_grid[label] = dis
        return per_grid

    per_grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    untuned = per_grid["none (default params)"]
    rows = [
        [label, summary(values)["std"], variance_ratio(values, untuned)]
        for label, values in per_grid.items()
    ]
    emit("ablation_grid_size", format_table(["grid", "std(DI)", "var_ratio_vs_untuned"], rows), capsys=capsys)


@pytest.mark.benchmark(group="ablations")
def test_imputer_family_accuracy(benchmark, capsys):
    """Learned vs mode imputation accuracy on the adult MNAR columns."""

    def run():
        frame = generate_adult(n=6000, seed=0)
        features = [c for c in frame.columns if c != "income"]
        # hide known values to create measurable ground truth
        rng = np.random.default_rng(1)
        observed = ~frame.col("workclass").missing_mask()
        hide = observed & (rng.random(frame.num_rows) < 0.1)
        truth = frame["workclass"][hide]
        hidden = frame.with_column(frame.col("workclass").set_where(hide, [None] * int(hide.sum())))
        scores = {}
        for label, handler in (
            ("mode", ModeImputer()),
            ("learned", DatawigImputer(target_columns=["workclass"])),
        ):
            handler.fit(hidden, features, seed=0)
            completed = handler.handle_missing(hidden)
            scores[label] = float((completed["workclass"][hide] == truth).mean())
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_imputer_family",
        format_table(["imputer", "accuracy"], [[k, v] for k, v in scores.items()]), capsys=capsys)
    # the paper found mode ~ datawig on adult's highly skewed columns; the
    # learned imputer must at least not be substantially worse
    assert scores["learned"] >= scores["mode"] - 0.05

"""Benchmarks for the model-serving subsystem.

Measures the two serving paths of :mod:`repro.serve.scoring` against their
naive alternatives:

* **batch scoring** — rows/sec of a registry-reloaded
  :class:`ScoringEngine` over a raw-schema frame, vs. re-running the full
  ``Experiment`` evaluation (the only way to get predictions for new rows
  before this subsystem existed);
* **single-record latency** — p50 of the frame-free fast path vs. routing
  each record through a one-row DataFrame + the batch path.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # measure + record
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # tiny CI gate

The default run merges measurements into ``benchmarks/BENCH_serve.json``.
``--smoke`` runs a small workload once, asserts the correctness invariants
(reloaded pipeline reproduces in-process predictions byte for byte; the
fast path agrees with the batch path), and enforces the committed speedup
floors, so CI catches both a broken serving path and a regressed recording.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import DecisionTree, Experiment, ModeImputer
from repro.datasets import load_dataset
from repro.frame import DataFrame, train_validation_test_masks
from repro.serve import ModelRegistry, ScoringEngine

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_serve.json")

# floors enforced by --smoke against the committed trajectory; the 10x
# batch floor is the ISSUE's acceptance criterion
SPEEDUP_FLOORS = {"batch_vs_experiment": 10.0, "single_fast_vs_frame": 2.0}

ADULT_ROWS = 6000
SMOKE_ROWS = 1200
SINGLE_RECORDS = 200


def _build(n_rows: int, seed: int = 1):
    """Train the adult pipeline once; return everything the benches need."""
    frame, spec = load_dataset("adult", n=n_rows)
    experiment = Experiment(
        frame=frame,
        spec=spec,
        random_seed=seed,
        learner=DecisionTree(tuned=False),
        missing_value_handler=ModeImputer(),
    )
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    _, _, test_mask = train_validation_test_masks(frame.num_rows, 0.7, 0.1, seed)
    raw_test = frame.mask(test_mask)
    return experiment, prepared, trained, result, frame, spec, raw_test


def _reloaded_engine(experiment, prepared, trained, result, root) -> ScoringEngine:
    registry = ModelRegistry(root)
    experiment.export_pipeline(prepared, trained, result, registry=registry)
    model_id = registry.list_models()[0]["model_id"]
    # a fresh registry object reloads everything from disk, like a new process
    return ScoringEngine(ModelRegistry(root).load_pipeline(model_id))


def _records(raw_test: DataFrame, limit: int):
    columns = raw_test.columns
    decoded = {c: raw_test.col(c).values for c in columns}
    return [
        {c: decoded[c][i] for c in columns} for i in range(min(limit, raw_test.num_rows))
    ]


def run_benchmarks(n_rows: int, repeats: int, smoke: bool) -> dict:
    experiment, prepared, trained, result, frame, spec, raw_test = _build(n_rows)
    with tempfile.TemporaryDirectory() as root:
        engine = _reloaded_engine(experiment, prepared, trained, result, root)

        # correctness invariants (always checked; CI relies on them)
        batch = engine.score_frame(raw_test)
        model, post = trained.models[result.best_index]
        expected = post.apply(
            experiment._predict(model, prepared.test_data_eval, prepared.test_data)
        )
        assert np.array_equal(batch.labels, expected.labels), (
            "reloaded batch predictions are not byte-identical to in-process"
        )
        if expected.scores is not None:
            assert np.array_equal(batch.scores, expected.scores), (
                "reloaded batch scores are not byte-identical to in-process"
            )
        metrics = engine.evaluate_frame(raw_test)
        for key, value in result.test_metrics.items():
            got = metrics[key]
            assert got == value or (got != got and value != value), (
                f"metric {key} differs after reload: {got} != {value}"
            )

        records = _records(raw_test, SINGLE_RECORDS if not smoke else 50)
        for record in records[:20]:
            fast = engine.score_record(record)
        # fast path must agree with the batch path (trees: exactly; linear
        # models may differ by a BLAS-reassociation ulp on scores)
        for i, record in enumerate(records[:50]):
            fast = engine.score_record(record)
            assert fast["label"] == batch.labels[i], (
                f"fast path label mismatch on record {i}"
            )

        # ---- throughput: batch serving vs re-running the experiment ----
        n_scored = batch.num_scored
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            engine.score_frame(raw_test)
            best = min(best, time.perf_counter() - start)
        batch_rows_per_sec = n_scored / best

        start = time.perf_counter()
        Experiment(
            frame=frame,
            spec=spec,
            random_seed=experiment.random_seed,
            learner=DecisionTree(tuned=False),
            missing_value_handler=ModeImputer(),
        ).run()
        experiment_seconds = time.perf_counter() - start
        experiment_rows_per_sec = n_scored / experiment_seconds

        # ---- latency: fast path vs one-row-frame path ----
        kinds = spec.column_kinds()

        def frame_path(record):
            data = {name: [record.get(name)] for name in kinds if name in record}
            one = DataFrame.from_dict(
                data, kinds={k: v for k, v in kinds.items() if k in data}
            )
            return engine.score_frame(one)

        fast_latencies, frame_latencies = [], []
        for record in records:
            start = time.perf_counter()
            engine.score_record(record)
            fast_latencies.append(time.perf_counter() - start)
        for record in records:
            start = time.perf_counter()
            frame_path(record)
            frame_latencies.append(time.perf_counter() - start)
        fast_p50 = float(np.median(fast_latencies) * 1000.0)
        frame_p50 = float(np.median(frame_latencies) * 1000.0)

    return {
        "measurements": {
            "batch_rows_per_sec": round(batch_rows_per_sec, 1),
            "experiment_rows_per_sec": round(experiment_rows_per_sec, 1),
            "single_fast_p50_ms": round(fast_p50, 4),
            "single_frame_p50_ms": round(frame_p50, 4),
        },
        "speedup": {
            "batch_vs_experiment": round(
                batch_rows_per_sec / experiment_rows_per_sec, 2
            ),
            "single_fast_vs_frame": round(frame_p50 / fast_p50, 2),
        },
        "meta": {"n_rows": n_rows, "test_rows": int(n_scored), "repeats": repeats},
    }


def check_floors() -> None:
    with open(BENCH_JSON) as handle:
        recorded = json.load(handle)
    for name, floor in SPEEDUP_FLOORS.items():
        value = recorded["speedup"][name]
        assert value >= floor, (
            f"committed {name} speedup {value} fell below its floor {floor}; "
            "re-record BENCH_serve.json from an implementation that restores it"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny run + floors")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    n_rows = args.rows or (SMOKE_ROWS if args.smoke else ADULT_ROWS)
    repeats = args.repeats or (1 if args.smoke else 3)

    results = run_benchmarks(n_rows, repeats, smoke=args.smoke)
    print(json.dumps(results, indent=2, sort_keys=True))

    if args.smoke:
        check_floors()
        print("\nsmoke checks passed (byte-identity + committed speedup floors)")
        return 0

    with open(BENCH_JSON, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nrecorded to {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 4: accuracy of imputed vs complete records on adult.

Regenerates panels (a) and (b): logistic regression and decision tree with
mode vs learned (Datawig-style) imputation, under three interventions.
Per run, accuracy is computed separately for test records that originally
had missing values (red dots) and complete records (gray dots).

Paper shape: imputed records are classifiable — with *higher* accuracy than
complete records (incomplete rows skew toward easy-to-classify negatives) —
and mode vs learned imputation show no significant difference.
"""

import pytest

from repro.analysis import (
    figure4_series,
    figure4_strategy_comparison,
    render_figure4,
)
from repro.core import (
    DIRemover,
    DatawigImputer,
    DecisionTree,
    GridSpec,
    LogisticRegression,
    ModeImputer,
    NoIntervention,
    ReweighingPreProcessor,
    run_grid,
)

from _config import ADULT_SIZE, FIG45_SEEDS, PAPER_SCALE, emit


def _learners():
    if PAPER_SCALE:
        return [
            lambda: LogisticRegression(tuned=True),
            lambda: DecisionTree(tuned=True),
        ]
    return [
        lambda: LogisticRegression(tuned=False),
        lambda: DecisionTree(
            tuned=True, param_grid={"max_depth": [5, 10]}, cv=3
        ),
    ]


def _sweep():
    grid = GridSpec(
        seeds=FIG45_SEEDS,
        learners=_learners(),
        interventions=[
            NoIntervention,
            ReweighingPreProcessor,
            lambda: DIRemover(1.0),
        ],
        missing_value_handlers=[lambda: ModeImputer(), lambda: DatawigImputer()],
    )
    return run_grid("adult", grid, dataset_size=ADULT_SIZE)


@pytest.mark.benchmark(group="figure4")
def test_fig4_imputation_strategies(benchmark, capsys):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    panels = figure4_series(results)
    comparison = figure4_strategy_comparison(
        panels, "ModeImputer", "LearnedImputer(all)"
    )
    mode_mean = comparison["ModeImputer"]["mean"]
    learned_mean = comparison["LearnedImputer(all)"]["mean"]
    emit(
        "figure4_adult_imputation",
        render_figure4(panels)
        + "\n\nmode-vs-learned on imputed records: "
        + f"mode={mode_mean:.3f}, learned={learned_mean:.3f}, "
        + f"no_significant_difference={comparison['no_significant_difference']}", capsys=capsys)
    # imputed records must be classified, and roughly as well as complete ones
    deltas = [p["summary"]["imputed_minus_complete"] for p in panels.values()]
    assert all(d > -0.10 for d in deltas)
    # mode and learned imputation land close together (the paper's finding)
    assert abs(mode_mean - learned_mean) < 0.05
